//! Exact rational numbers over [`BigInt`].
//!
//! A [`Rational`] is always stored in canonical form: the denominator is
//! strictly positive and `gcd(|numerator|, denominator) == 1` (with `0`
//! represented as `0/1`). Equality and ordering are therefore exact and cheap.
//!
//! # Fast paths
//!
//! Because [`BigInt`] stores every `i64`-sized value inline, a rational whose
//! numerator and denominator both fit in `i64` occupies no heap at all. Every
//! arithmetic operation first tries an `i128` cross-multiplication fast path
//! (the products of two `i64`s always fit in `i128`), normalizing with the
//! machine binary GCD ([`crate::gcd_u64`]/[`gcd_u128`]) instead of the
//! allocating `BigInt` Euclid loop; only results that overflow the checked
//! `i128` arithmetic fall back to the general `BigInt` path.
//!
//! # Deferred normalization (gcd-light fused ops)
//!
//! The exact simplex solver spends almost all of its time in row updates of
//! the form `x ← x − f·p`. Computed naively that is two canonicalizing
//! operations (one multiply, one subtract), i.e. two GCD normalizations per
//! element. [`Rational::sub_mul_assign`] / [`Rational::add_mul_assign`] fuse
//! the multiply into the addition over a common denominator and normalize
//! exactly **once**, and [`Rational::cmp_div`] compares two quotients without
//! materializing (or normalizing) either of them — the minimum-ratio test
//! needs no division at all.

use core::cmp::Ordering;
use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};
use core::str::FromStr;

use crate::bigint::{BigInt, Sign};
use crate::gcd::gcd_u128;

/// An exact rational number.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Rational {
    numer: BigInt,
    denom: BigInt,
}

impl Rational {
    /// The value `0`.
    pub fn zero() -> Rational {
        Rational {
            numer: BigInt::zero(),
            denom: BigInt::one(),
        }
    }

    /// The value `1`.
    pub fn one() -> Rational {
        Rational {
            numer: BigInt::one(),
            denom: BigInt::one(),
        }
    }

    /// Views the value as machine integers when both parts fit in `i64`
    /// (exactly the case where [`BigInt`] stores them inline).
    #[inline]
    fn small_parts(&self) -> Option<(i64, i64)> {
        Some((self.numer.to_i64()?, self.denom.to_i64()?))
    }

    /// Builds the canonical rational for `numer / denom` given as `i128`s.
    /// `denom` must be nonzero; both magnitudes must stay clear of
    /// `i128::MIN` (guaranteed for cross-products of `i64`s).
    fn from_i128_frac(mut numer: i128, mut denom: i128) -> Rational {
        debug_assert!(denom != 0, "rational with zero denominator");
        if numer == 0 {
            return Rational::zero();
        }
        if denom < 0 {
            numer = -numer;
            denom = -denom;
        }
        let g = gcd_u128(numer.unsigned_abs(), denom.unsigned_abs());
        if g > 1 {
            numer /= g as i128;
            denom /= g as i128;
        }
        Rational {
            numer: BigInt::from(numer),
            denom: BigInt::from(denom),
        }
    }

    /// Builds the rational `numer / denom`, normalizing sign and common factors.
    ///
    /// # Panics
    /// Panics if `denom` is zero.
    // lint: allow(L008) assert pins the documented non-zero-denominator precondition
    pub fn from_frac(numer: BigInt, denom: BigInt) -> Rational {
        assert!(!denom.is_zero(), "rational with zero denominator");
        if let (Some(n), Some(d)) = (numer.to_i64(), denom.to_i64()) {
            return Rational::from_i128_frac(n as i128, d as i128);
        }
        if numer.is_zero() {
            return Rational::zero();
        }
        let mut numer = numer;
        let mut denom = denom;
        if denom.is_negative() {
            numer = -numer;
            denom = -denom;
        }
        let g = numer.gcd(&denom);
        if !g.is_one() {
            numer = &numer / &g;
            denom = &denom / &g;
        }
        Rational { numer, denom }
    }

    /// Builds an integer-valued rational.
    pub fn from_integer(value: BigInt) -> Rational {
        Rational {
            numer: value,
            denom: BigInt::one(),
        }
    }

    /// Best rational approximation of an `f64` with denominator at most
    /// `max_denom`, via continued fractions. Returns `None` for non-finite
    /// inputs or `max_denom == 0`.
    ///
    /// Used only for *reporting* general (non power-of-two) `β = log_M L`
    /// values; all optimality proofs in the workspace run on exactly
    /// representable instances.
    pub fn approx_f64(value: f64, max_denom: u64) -> Option<Rational> {
        if !value.is_finite() || max_denom == 0 {
            return None;
        }
        let negative = value < 0.0;
        let mut x = value.abs();
        // Continued-fraction convergents p/q.
        let (mut p0, mut q0, mut p1, mut q1) = (0i128, 1i128, 1i128, 0i128);
        for _ in 0..64 {
            let a = x.floor();
            if a > i64::MAX as f64 {
                break;
            }
            let ai = a as i128;
            let p2 = ai.checked_mul(p1)?.checked_add(p0)?;
            let q2 = ai.checked_mul(q1)?.checked_add(q0)?;
            if q2 as u128 > max_denom as u128 {
                break;
            }
            p0 = p1;
            q0 = q1;
            p1 = p2;
            q1 = q2;
            let frac = x - a;
            if frac < 1e-15 {
                break;
            }
            x = 1.0 / frac;
        }
        if q1 == 0 {
            return None;
        }
        let mut out = Rational::from_frac(BigInt::from(p1), BigInt::from(q1));
        if negative {
            out = -&out;
        }
        Some(out)
    }

    /// Numerator (sign-carrying).
    pub fn numer(&self) -> &BigInt {
        &self.numer
    }

    /// Denominator (always strictly positive).
    pub fn denom(&self) -> &BigInt {
        &self.denom
    }

    /// Returns `true` iff the value is zero.
    pub fn is_zero(&self) -> bool {
        self.numer.is_zero()
    }

    /// Returns `true` iff the value is one.
    pub fn is_one(&self) -> bool {
        self.numer.is_one() && self.denom.is_one()
    }

    /// Returns `true` iff the value is strictly negative.
    pub fn is_negative(&self) -> bool {
        self.numer.is_negative()
    }

    /// Returns `true` iff the value is strictly positive.
    pub fn is_positive(&self) -> bool {
        self.numer.is_positive()
    }

    /// Returns `true` iff the value is an integer.
    pub fn is_integer(&self) -> bool {
        self.denom.is_one()
    }

    /// Sign of the value.
    pub fn sign(&self) -> Sign {
        self.numer.sign()
    }

    /// Absolute value.
    pub fn abs(&self) -> Rational {
        if self.is_negative() {
            -self
        } else {
            self.clone()
        }
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    /// Panics if the value is zero.
    // lint: allow(L008) assert pins non-zero receiver; callers check is_zero first
    pub fn recip(&self) -> Rational {
        assert!(!self.is_zero(), "reciprocal of zero");
        // Already in lowest terms: only the sign may need moving.
        if self.numer.is_negative() {
            Rational {
                numer: -&self.denom,
                denom: -&self.numer,
            }
        } else {
            Rational {
                numer: self.denom.clone(),
                denom: self.numer.clone(),
            }
        }
    }

    /// Raises to an integer power (negative exponents invert; `0^0 == 1`).
    ///
    /// # Panics
    /// Panics if the value is zero and `exp < 0`.
    pub fn pow(&self, exp: i32) -> Rational {
        if exp == 0 {
            return Rational::one();
        }
        let mag = exp.unsigned_abs();
        // Powers of a canonical fraction stay canonical; no gcd needed.
        let out = Rational {
            numer: self.numer.pow(mag),
            denom: self.denom.pow(mag),
        };
        if exp < 0 {
            out.recip()
        } else {
            out
        }
    }

    /// Largest integer `<=` the value.
    pub fn floor(&self) -> BigInt {
        let (q, r) = self.numer.div_rem(&self.denom);
        if r.is_zero() || !self.numer.is_negative() {
            q
        } else {
            &q - &BigInt::one()
        }
    }

    /// Smallest integer `>=` the value.
    pub fn ceil(&self) -> BigInt {
        let (q, r) = self.numer.div_rem(&self.denom);
        if r.is_zero() || self.numer.is_negative() {
            q
        } else {
            &q + &BigInt::one()
        }
    }

    /// Lossy conversion to `f64`.
    pub fn to_f64(&self) -> f64 {
        // Scale so that both parts stay in f64 range for typical magnitudes.
        self.numer.to_f64() / self.denom.to_f64()
    }

    /// Returns the smaller of two rationals (by value).
    pub fn min(self, other: Rational) -> Rational {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Returns the larger of two rationals (by value).
    pub fn max(self, other: Rational) -> Rational {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Fused `self ← self − f·p` with a **single** normalization.
    ///
    /// This is the simplex row-update kernel: the product is folded into the
    /// subtraction over the common denominator `d(self)·d(f)·d(p)`, so the
    /// whole update costs one GCD instead of the two a separate multiply and
    /// subtract would pay — and on the `i64` fast path, no allocation at all.
    pub fn sub_mul_assign(&mut self, f: &Rational, p: &Rational) {
        self.fused_mul_acc(f, p, true);
    }

    /// Fused `self ← self + f·p`; see [`Rational::sub_mul_assign`].
    pub fn add_mul_assign(&mut self, f: &Rational, p: &Rational) {
        self.fused_mul_acc(f, p, false);
    }

    fn fused_mul_acc(&mut self, f: &Rational, p: &Rational, subtract: bool) {
        if f.is_zero() || p.is_zero() {
            return;
        }
        if let (Some((an, ad)), Some((fn_, fd)), Some((pn, pd))) =
            (self.small_parts(), f.small_parts(), p.small_parts())
        {
            // num = an·(fd·pd) ∓ ad·(fn·pn),  den = ad·(fd·pd).
            // The inner products always fit in i128; the outer ones are
            // checked and overflow falls through to the BigInt path.
            let fp_n = fn_ as i128 * pn as i128;
            let fp_d = fd as i128 * pd as i128;
            let outer = || -> Option<(i128, i128)> {
                let t1 = (an as i128).checked_mul(fp_d)?;
                let t2 = (ad as i128).checked_mul(fp_n)?;
                let num = if subtract {
                    t1.checked_sub(t2)?
                } else {
                    t1.checked_add(t2)?
                };
                let den = (ad as i128).checked_mul(fp_d)?;
                Some((num, den))
            };
            if let Some((num, den)) = outer() {
                *self = Rational::from_i128_frac(num, den);
                return;
            }
        }
        let fp_d = &f.denom * &p.denom;
        let t1 = &self.numer * &fp_d;
        let t2 = &self.denom * &(&f.numer * &p.numer);
        let num = if subtract { &t1 - &t2 } else { &t1 + &t2 };
        let den = &self.denom * &fp_d;
        *self = Rational::from_frac(num, den);
    }

    /// Compares `a/b` against `c/d` (as exact values) without forming either
    /// quotient. `b` and `d` must be strictly positive.
    ///
    /// This is the simplex minimum-ratio comparison: it needs no division,
    /// no normalization, and on the `i64` fast path no allocation.
    pub fn cmp_div(a: &Rational, b: &Rational, c: &Rational, d: &Rational) -> Ordering {
        debug_assert!(
            b.is_positive() && d.is_positive(),
            "cmp_div needs positive denominators"
        );
        // a/b vs c/d  ⇔  a·d vs c·b (b, d > 0), expanded over the four
        // component fractions:
        //   (an·dn)·(cd·bd)  vs  (cn·bn)·(ad·dd)
        if let (Some((an, ad)), Some((bn, bd)), Some((cn, cd)), Some((dn, dd))) = (
            a.small_parts(),
            b.small_parts(),
            c.small_parts(),
            d.small_parts(),
        ) {
            let lhs = (an as i128 * dn as i128).checked_mul(cd as i128 * bd as i128);
            let rhs = (cn as i128 * bn as i128).checked_mul(ad as i128 * dd as i128);
            if let (Some(l), Some(r)) = (lhs, rhs) {
                return l.cmp(&r);
            }
        }
        let lhs = &(&a.numer * &d.numer) * &(&c.denom * &b.denom);
        let rhs = &(&c.numer * &b.numer) * &(&a.denom * &d.denom);
        lhs.cmp(&rhs)
    }
}

impl Default for Rational {
    fn default() -> Self {
        Rational::zero()
    }
}

impl From<BigInt> for Rational {
    fn from(v: BigInt) -> Rational {
        Rational::from_integer(v)
    }
}

macro_rules! impl_from_machine {
    ($($t:ty),*) => {$(
        impl From<$t> for Rational {
            fn from(v: $t) -> Rational {
                Rational::from_integer(BigInt::from(v))
            }
        }
    )*};
}

impl_from_machine!(u8, u16, u32, u64, usize, i8, i16, i32, i64, i128);

impl PartialOrd for Rational {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rational {
    fn cmp(&self, other: &Self) -> Ordering {
        // a/b vs c/d  <=>  a*d vs c*b  (b, d > 0).
        if let (Some((an, ad)), Some((bn, bd))) = (self.small_parts(), other.small_parts()) {
            return (an as i128 * bd as i128).cmp(&(bn as i128 * ad as i128));
        }
        let lhs = &self.numer * &other.denom;
        let rhs = &other.numer * &self.denom;
        lhs.cmp(&rhs)
    }
}

impl Neg for &Rational {
    type Output = Rational;
    fn neg(self) -> Rational {
        Rational {
            numer: -&self.numer,
            denom: self.denom.clone(),
        }
    }
}

impl Neg for Rational {
    type Output = Rational;
    fn neg(self) -> Rational {
        Rational {
            numer: -self.numer,
            denom: self.denom,
        }
    }
}

impl Add for &Rational {
    type Output = Rational;
    fn add(self, rhs: &Rational) -> Rational {
        if let (Some((an, ad)), Some((bn, bd))) = (self.small_parts(), rhs.small_parts()) {
            // an·bd + bn·ad can overflow i128 only at the extreme corner
            // (both summands near 2^126); checked-add and fall through.
            let num = (an as i128 * bd as i128).checked_add(bn as i128 * ad as i128);
            if let Some(num) = num {
                return Rational::from_i128_frac(num, ad as i128 * bd as i128);
            }
        }
        Rational::from_frac(
            &(&self.numer * &rhs.denom) + &(&rhs.numer * &self.denom),
            &self.denom * &rhs.denom,
        )
    }
}

impl Sub for &Rational {
    type Output = Rational;
    fn sub(self, rhs: &Rational) -> Rational {
        if let (Some((an, ad)), Some((bn, bd))) = (self.small_parts(), rhs.small_parts()) {
            let num = (an as i128 * bd as i128).checked_sub(bn as i128 * ad as i128);
            if let Some(num) = num {
                return Rational::from_i128_frac(num, ad as i128 * bd as i128);
            }
        }
        self + &(-rhs)
    }
}

impl Mul for &Rational {
    type Output = Rational;
    fn mul(self, rhs: &Rational) -> Rational {
        if let (Some((an, ad)), Some((bn, bd))) = (self.small_parts(), rhs.small_parts()) {
            return Rational::from_i128_frac(an as i128 * bn as i128, ad as i128 * bd as i128);
        }
        Rational::from_frac(&self.numer * &rhs.numer, &self.denom * &rhs.denom)
    }
}

impl Div for &Rational {
    type Output = Rational;
    fn div(self, rhs: &Rational) -> Rational {
        assert!(!rhs.is_zero(), "division of Rational by zero");
        if let (Some((an, ad)), Some((bn, bd))) = (self.small_parts(), rhs.small_parts()) {
            return Rational::from_i128_frac(an as i128 * bd as i128, ad as i128 * bn as i128);
        }
        Rational::from_frac(&self.numer * &rhs.denom, &self.denom * &rhs.numer)
    }
}

macro_rules! forward_binop {
    ($trait:ident, $method:ident) => {
        impl $trait for Rational {
            type Output = Rational;
            fn $method(self, rhs: Rational) -> Rational {
                (&self).$method(&rhs)
            }
        }
        impl $trait<&Rational> for Rational {
            type Output = Rational;
            fn $method(self, rhs: &Rational) -> Rational {
                (&self).$method(rhs)
            }
        }
        impl $trait<Rational> for &Rational {
            type Output = Rational;
            fn $method(self, rhs: Rational) -> Rational {
                self.$method(&rhs)
            }
        }
    };
}

forward_binop!(Add, add);
forward_binop!(Sub, sub);
forward_binop!(Mul, mul);
forward_binop!(Div, div);

impl AddAssign<&Rational> for Rational {
    fn add_assign(&mut self, rhs: &Rational) {
        *self = &*self + rhs;
    }
}

impl SubAssign<&Rational> for Rational {
    fn sub_assign(&mut self, rhs: &Rational) {
        *self = &*self - rhs;
    }
}

impl MulAssign<&Rational> for Rational {
    fn mul_assign(&mut self, rhs: &Rational) {
        *self = &*self * rhs;
    }
}

impl fmt::Display for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.denom.is_one() {
            write!(f, "{}", self.numer)
        } else {
            write!(f, "{}/{}", self.numer, self.denom)
        }
    }
}

impl fmt::Debug for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Rational({})", self)
    }
}

/// Error returned when parsing a [`Rational`] from a malformed string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseRationalError;

impl fmt::Display for ParseRationalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid Rational literal (expected `p` or `p/q`)")
    }
}

impl std::error::Error for ParseRationalError {}

/// Serialized as the exact string `"p"` or `"p/q"` (the [`fmt::Display`]
/// form), so JSON documents carry rationals without precision loss.
impl serde::Serialize for Rational {
    fn serialize(&self) -> serde::Value {
        serde::Value::String(self.to_string())
    }
}

impl serde::Deserialize for Rational {
    fn deserialize(v: &serde::Value) -> Result<Rational, serde::Error> {
        match v {
            serde::Value::String(s) => s
                .parse()
                .map_err(|e: ParseRationalError| serde::Error::custom(e.to_string())),
            serde::Value::Int(i) => Ok(Rational::from_integer(BigInt::from(*i))),
            other => Err(serde::Error::custom(format!(
                "expected a rational literal string, found {}",
                other.kind()
            ))),
        }
    }
}

impl FromStr for Rational {
    type Err = ParseRationalError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.split_once('/') {
            None => {
                let n: BigInt = s.parse().map_err(|_| ParseRationalError)?;
                Ok(Rational::from_integer(n))
            }
            Some((num, den)) => {
                let n: BigInt = num.parse().map_err(|_| ParseRationalError)?;
                let d: BigInt = den.parse().map_err(|_| ParseRationalError)?;
                if d.is_zero() {
                    return Err(ParseRationalError);
                }
                Ok(Rational::from_frac(n, d))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ratio;

    #[test]
    fn normalization() {
        assert_eq!(ratio(2, 4), ratio(1, 2));
        assert_eq!(ratio(-2, -4), ratio(1, 2));
        assert_eq!(ratio(2, -4), ratio(-1, 2));
        assert_eq!(ratio(0, 7), Rational::zero());
        assert!(ratio(0, 7).denom().is_one());
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_panics() {
        let _ = ratio(1, 0);
    }

    #[test]
    fn arithmetic() {
        assert_eq!(&ratio(1, 2) + &ratio(1, 3), ratio(5, 6));
        assert_eq!(&ratio(1, 2) - &ratio(1, 3), ratio(1, 6));
        assert_eq!(&ratio(2, 3) * &ratio(3, 4), ratio(1, 2));
        assert_eq!(&ratio(2, 3) / &ratio(4, 3), ratio(1, 2));
        assert_eq!(-&ratio(1, 2), ratio(-1, 2));
    }

    #[test]
    fn arithmetic_beyond_the_small_path() {
        // Denominators of ~2^80 force the BigInt fallback; results must agree
        // with hand-computed canonical forms.
        let big = Rational::from_frac(BigInt::one(), BigInt::from(2).pow(80));
        let sum = &big + &big;
        assert_eq!(
            sum,
            Rational::from_frac(BigInt::one(), BigInt::from(2).pow(79))
        );
        let prod = &big * &Rational::from_integer(BigInt::from(2).pow(80));
        assert_eq!(prod, Rational::one());
        assert!(big < ratio(1, 1_000_000));
        assert!(big.is_positive());
    }

    #[test]
    fn fused_sub_mul_matches_separate_ops() {
        let cases = [
            (ratio(3, 4), ratio(5, 6), ratio(-7, 8)),
            (ratio(0, 1), ratio(1, 3), ratio(3, 1)),
            (ratio(-2, 9), ratio(0, 5), ratio(4, 7)),
            (ratio(1, 1), ratio(1, 1), ratio(1, 1)),
            (
                ratio(i64::MAX - 1, 3),
                ratio(i64::MAX - 2, 5),
                ratio(7, i64::MAX - 3),
            ),
        ];
        for (a, f, p) in cases {
            let mut fused = a.clone();
            fused.sub_mul_assign(&f, &p);
            assert_eq!(fused, &a - &(&f * &p), "sub_mul {a} {f} {p}");
            let mut fused = a.clone();
            fused.add_mul_assign(&f, &p);
            assert_eq!(fused, &a + &(&f * &p), "add_mul {a} {f} {p}");
        }
    }

    #[test]
    fn fused_ops_fall_back_to_bigint_cleanly() {
        let huge = Rational::from_frac(BigInt::from(3), BigInt::from(2).pow(100));
        let mut x = ratio(1, 3);
        x.sub_mul_assign(&huge, &ratio(1, 7));
        assert_eq!(x, &ratio(1, 3) - &(&huge * &ratio(1, 7)));
    }

    #[test]
    fn cmp_div_matches_division() {
        let vals = [
            ratio(1, 2),
            ratio(-3, 4),
            ratio(5, 1),
            ratio(0, 1),
            ratio(7, 9),
            ratio(-1, 100),
        ];
        let dens = [ratio(1, 3), ratio(2, 1), ratio(9, 7)];
        for a in &vals {
            for b in &dens {
                for c in &vals {
                    for d in &dens {
                        let expect = (a / b).cmp(&(c / d));
                        assert_eq!(
                            Rational::cmp_div(a, b, c, d),
                            expect,
                            "cmp_div({a},{b},{c},{d})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn ordering_and_minmax() {
        assert!(ratio(1, 3) < ratio(1, 2));
        assert!(ratio(-1, 2) < ratio(-1, 3));
        assert!(ratio(3, 2) > Rational::one());
        assert_eq!(ratio(1, 3).min(ratio(1, 2)), ratio(1, 3));
        assert_eq!(ratio(1, 3).max(ratio(1, 2)), ratio(1, 2));
    }

    #[test]
    fn pow_and_recip() {
        assert_eq!(ratio(2, 3).pow(2), ratio(4, 9));
        assert_eq!(ratio(2, 3).pow(-2), ratio(9, 4));
        assert_eq!(ratio(2, 3).pow(0), Rational::one());
        assert_eq!(ratio(2, 3).recip(), ratio(3, 2));
        assert_eq!(ratio(-2, 3).recip(), ratio(-3, 2));
        assert!(ratio(-2, 3).recip().denom().is_positive());
    }

    #[test]
    fn floor_ceil() {
        assert_eq!(ratio(7, 2).floor(), BigInt::from(3));
        assert_eq!(ratio(7, 2).ceil(), BigInt::from(4));
        assert_eq!(ratio(-7, 2).floor(), BigInt::from(-4));
        assert_eq!(ratio(-7, 2).ceil(), BigInt::from(-3));
        assert_eq!(ratio(6, 2).floor(), BigInt::from(3));
        assert_eq!(ratio(6, 2).ceil(), BigInt::from(3));
        assert_eq!(Rational::zero().floor(), BigInt::zero());
    }

    #[test]
    fn display_and_parse() {
        assert_eq!(ratio(3, 2).to_string(), "3/2");
        assert_eq!(ratio(4, 2).to_string(), "2");
        assert_eq!("3/2".parse::<Rational>().unwrap(), ratio(3, 2));
        assert_eq!("-5".parse::<Rational>().unwrap(), ratio(-5, 1));
        assert!("1/0".parse::<Rational>().is_err());
        assert!("a/b".parse::<Rational>().is_err());
    }

    #[test]
    fn to_f64_reasonable() {
        assert!((ratio(1, 3).to_f64() - 1.0 / 3.0).abs() < 1e-12);
        assert!((ratio(-22, 7).to_f64() + 22.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn approx_f64_recovers_simple_fractions() {
        assert_eq!(Rational::approx_f64(0.5, 100).unwrap(), ratio(1, 2));
        assert_eq!(Rational::approx_f64(-0.75, 100).unwrap(), ratio(-3, 4));
        let third = Rational::approx_f64(1.0 / 3.0, 1000).unwrap();
        assert_eq!(third, ratio(1, 3));
        assert!(Rational::approx_f64(f64::NAN, 10).is_none());
        assert!(Rational::approx_f64(1.0, 0).is_none());
    }
}
