//! Exact rational numbers over [`BigInt`].
//!
//! A [`Rational`] is always stored in canonical form: the denominator is
//! strictly positive and `gcd(|numerator|, denominator) == 1` (with `0`
//! represented as `0/1`). Equality and ordering are therefore exact and cheap.

use core::cmp::Ordering;
use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};
use core::str::FromStr;

use crate::bigint::{BigInt, Sign};

/// An exact rational number.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Rational {
    numer: BigInt,
    denom: BigInt,
}

impl Rational {
    /// The value `0`.
    pub fn zero() -> Rational {
        Rational { numer: BigInt::zero(), denom: BigInt::one() }
    }

    /// The value `1`.
    pub fn one() -> Rational {
        Rational { numer: BigInt::one(), denom: BigInt::one() }
    }

    /// Builds the rational `numer / denom`, normalizing sign and common factors.
    ///
    /// # Panics
    /// Panics if `denom` is zero.
    pub fn from_frac(numer: BigInt, denom: BigInt) -> Rational {
        assert!(!denom.is_zero(), "rational with zero denominator");
        if numer.is_zero() {
            return Rational::zero();
        }
        let mut numer = numer;
        let mut denom = denom;
        if denom.is_negative() {
            numer = -numer;
            denom = -denom;
        }
        let g = numer.gcd(&denom);
        if !g.is_one() {
            numer = &numer / &g;
            denom = &denom / &g;
        }
        Rational { numer, denom }
    }

    /// Builds an integer-valued rational.
    pub fn from_integer(value: BigInt) -> Rational {
        Rational { numer: value, denom: BigInt::one() }
    }

    /// Best rational approximation of an `f64` with denominator at most
    /// `max_denom`, via continued fractions. Returns `None` for non-finite
    /// inputs or `max_denom == 0`.
    ///
    /// Used only for *reporting* general (non power-of-two) `β = log_M L`
    /// values; all optimality proofs in the workspace run on exactly
    /// representable instances.
    pub fn approx_f64(value: f64, max_denom: u64) -> Option<Rational> {
        if !value.is_finite() || max_denom == 0 {
            return None;
        }
        let negative = value < 0.0;
        let mut x = value.abs();
        // Continued-fraction convergents p/q.
        let (mut p0, mut q0, mut p1, mut q1) = (0i128, 1i128, 1i128, 0i128);
        for _ in 0..64 {
            let a = x.floor();
            if a > i64::MAX as f64 {
                break;
            }
            let ai = a as i128;
            let p2 = ai.checked_mul(p1)?.checked_add(p0)?;
            let q2 = ai.checked_mul(q1)?.checked_add(q0)?;
            if q2 as u128 > max_denom as u128 {
                break;
            }
            p0 = p1;
            q0 = q1;
            p1 = p2;
            q1 = q2;
            let frac = x - a;
            if frac < 1e-15 {
                break;
            }
            x = 1.0 / frac;
        }
        if q1 == 0 {
            return None;
        }
        let mut out = Rational::from_frac(BigInt::from(p1), BigInt::from(q1));
        if negative {
            out = -&out;
        }
        Some(out)
    }

    /// Numerator (sign-carrying).
    pub fn numer(&self) -> &BigInt {
        &self.numer
    }

    /// Denominator (always strictly positive).
    pub fn denom(&self) -> &BigInt {
        &self.denom
    }

    /// Returns `true` iff the value is zero.
    pub fn is_zero(&self) -> bool {
        self.numer.is_zero()
    }

    /// Returns `true` iff the value is strictly negative.
    pub fn is_negative(&self) -> bool {
        self.numer.is_negative()
    }

    /// Returns `true` iff the value is strictly positive.
    pub fn is_positive(&self) -> bool {
        self.numer.is_positive()
    }

    /// Returns `true` iff the value is an integer.
    pub fn is_integer(&self) -> bool {
        self.denom.is_one()
    }

    /// Sign of the value.
    pub fn sign(&self) -> Sign {
        self.numer.sign()
    }

    /// Absolute value.
    pub fn abs(&self) -> Rational {
        if self.is_negative() {
            -self
        } else {
            self.clone()
        }
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    /// Panics if the value is zero.
    pub fn recip(&self) -> Rational {
        assert!(!self.is_zero(), "reciprocal of zero");
        Rational::from_frac(self.denom.clone(), self.numer.clone())
    }

    /// Raises to an integer power (negative exponents invert; `0^0 == 1`).
    ///
    /// # Panics
    /// Panics if the value is zero and `exp < 0`.
    pub fn pow(&self, exp: i32) -> Rational {
        if exp == 0 {
            return Rational::one();
        }
        let mag = exp.unsigned_abs();
        let out = Rational {
            numer: self.numer.pow(mag),
            denom: self.denom.pow(mag),
        };
        if exp < 0 {
            out.recip()
        } else {
            out
        }
    }

    /// Largest integer `<=` the value.
    pub fn floor(&self) -> BigInt {
        let (q, r) = self.numer.div_rem(&self.denom);
        if r.is_zero() || !self.numer.is_negative() {
            q
        } else {
            &q - &BigInt::one()
        }
    }

    /// Smallest integer `>=` the value.
    pub fn ceil(&self) -> BigInt {
        let (q, r) = self.numer.div_rem(&self.denom);
        if r.is_zero() || self.numer.is_negative() {
            q
        } else {
            &q + &BigInt::one()
        }
    }

    /// Lossy conversion to `f64`.
    pub fn to_f64(&self) -> f64 {
        // Scale so that both parts stay in f64 range for typical magnitudes.
        self.numer.to_f64() / self.denom.to_f64()
    }

    /// Returns the smaller of two rationals (by value).
    pub fn min(self, other: Rational) -> Rational {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Returns the larger of two rationals (by value).
    pub fn max(self, other: Rational) -> Rational {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl Default for Rational {
    fn default() -> Self {
        Rational::zero()
    }
}

impl From<BigInt> for Rational {
    fn from(v: BigInt) -> Rational {
        Rational::from_integer(v)
    }
}

macro_rules! impl_from_machine {
    ($($t:ty),*) => {$(
        impl From<$t> for Rational {
            fn from(v: $t) -> Rational {
                Rational::from_integer(BigInt::from(v))
            }
        }
    )*};
}

impl_from_machine!(u8, u16, u32, u64, usize, i8, i16, i32, i64, i128);

impl PartialOrd for Rational {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rational {
    fn cmp(&self, other: &Self) -> Ordering {
        // a/b vs c/d  <=>  a*d vs c*b  (b, d > 0).
        let lhs = &self.numer * &other.denom;
        let rhs = &other.numer * &self.denom;
        lhs.cmp(&rhs)
    }
}

impl Neg for &Rational {
    type Output = Rational;
    fn neg(self) -> Rational {
        Rational { numer: -&self.numer, denom: self.denom.clone() }
    }
}

impl Neg for Rational {
    type Output = Rational;
    fn neg(self) -> Rational {
        -&self
    }
}

impl Add for &Rational {
    type Output = Rational;
    fn add(self, rhs: &Rational) -> Rational {
        Rational::from_frac(
            &(&self.numer * &rhs.denom) + &(&rhs.numer * &self.denom),
            &self.denom * &rhs.denom,
        )
    }
}

impl Sub for &Rational {
    type Output = Rational;
    fn sub(self, rhs: &Rational) -> Rational {
        self + &(-rhs)
    }
}

impl Mul for &Rational {
    type Output = Rational;
    fn mul(self, rhs: &Rational) -> Rational {
        Rational::from_frac(&self.numer * &rhs.numer, &self.denom * &rhs.denom)
    }
}

impl Div for &Rational {
    type Output = Rational;
    fn div(self, rhs: &Rational) -> Rational {
        assert!(!rhs.is_zero(), "division of Rational by zero");
        Rational::from_frac(&self.numer * &rhs.denom, &self.denom * &rhs.numer)
    }
}

macro_rules! forward_binop {
    ($trait:ident, $method:ident) => {
        impl $trait for Rational {
            type Output = Rational;
            fn $method(self, rhs: Rational) -> Rational {
                (&self).$method(&rhs)
            }
        }
        impl $trait<&Rational> for Rational {
            type Output = Rational;
            fn $method(self, rhs: &Rational) -> Rational {
                (&self).$method(rhs)
            }
        }
        impl $trait<Rational> for &Rational {
            type Output = Rational;
            fn $method(self, rhs: Rational) -> Rational {
                self.$method(&rhs)
            }
        }
    };
}

forward_binop!(Add, add);
forward_binop!(Sub, sub);
forward_binop!(Mul, mul);
forward_binop!(Div, div);

impl AddAssign<&Rational> for Rational {
    fn add_assign(&mut self, rhs: &Rational) {
        *self = &*self + rhs;
    }
}

impl SubAssign<&Rational> for Rational {
    fn sub_assign(&mut self, rhs: &Rational) {
        *self = &*self - rhs;
    }
}

impl MulAssign<&Rational> for Rational {
    fn mul_assign(&mut self, rhs: &Rational) {
        *self = &*self * rhs;
    }
}

impl fmt::Display for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.denom.is_one() {
            write!(f, "{}", self.numer)
        } else {
            write!(f, "{}/{}", self.numer, self.denom)
        }
    }
}

impl fmt::Debug for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Rational({})", self)
    }
}

/// Error returned when parsing a [`Rational`] from a malformed string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseRationalError;

impl fmt::Display for ParseRationalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid Rational literal (expected `p` or `p/q`)")
    }
}

impl std::error::Error for ParseRationalError {}

impl FromStr for Rational {
    type Err = ParseRationalError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.split_once('/') {
            None => {
                let n: BigInt = s.parse().map_err(|_| ParseRationalError)?;
                Ok(Rational::from_integer(n))
            }
            Some((num, den)) => {
                let n: BigInt = num.parse().map_err(|_| ParseRationalError)?;
                let d: BigInt = den.parse().map_err(|_| ParseRationalError)?;
                if d.is_zero() {
                    return Err(ParseRationalError);
                }
                Ok(Rational::from_frac(n, d))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ratio;

    #[test]
    fn normalization() {
        assert_eq!(ratio(2, 4), ratio(1, 2));
        assert_eq!(ratio(-2, -4), ratio(1, 2));
        assert_eq!(ratio(2, -4), ratio(-1, 2));
        assert_eq!(ratio(0, 7), Rational::zero());
        assert!(ratio(0, 7).denom().is_one());
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_panics() {
        let _ = ratio(1, 0);
    }

    #[test]
    fn arithmetic() {
        assert_eq!(&ratio(1, 2) + &ratio(1, 3), ratio(5, 6));
        assert_eq!(&ratio(1, 2) - &ratio(1, 3), ratio(1, 6));
        assert_eq!(&ratio(2, 3) * &ratio(3, 4), ratio(1, 2));
        assert_eq!(&ratio(2, 3) / &ratio(4, 3), ratio(1, 2));
        assert_eq!(-&ratio(1, 2), ratio(-1, 2));
    }

    #[test]
    fn ordering_and_minmax() {
        assert!(ratio(1, 3) < ratio(1, 2));
        assert!(ratio(-1, 2) < ratio(-1, 3));
        assert!(ratio(3, 2) > Rational::one());
        assert_eq!(ratio(1, 3).min(ratio(1, 2)), ratio(1, 3));
        assert_eq!(ratio(1, 3).max(ratio(1, 2)), ratio(1, 2));
    }

    #[test]
    fn pow_and_recip() {
        assert_eq!(ratio(2, 3).pow(2), ratio(4, 9));
        assert_eq!(ratio(2, 3).pow(-2), ratio(9, 4));
        assert_eq!(ratio(2, 3).pow(0), Rational::one());
        assert_eq!(ratio(2, 3).recip(), ratio(3, 2));
    }

    #[test]
    fn floor_ceil() {
        assert_eq!(ratio(7, 2).floor(), BigInt::from(3));
        assert_eq!(ratio(7, 2).ceil(), BigInt::from(4));
        assert_eq!(ratio(-7, 2).floor(), BigInt::from(-4));
        assert_eq!(ratio(-7, 2).ceil(), BigInt::from(-3));
        assert_eq!(ratio(6, 2).floor(), BigInt::from(3));
        assert_eq!(ratio(6, 2).ceil(), BigInt::from(3));
        assert_eq!(Rational::zero().floor(), BigInt::zero());
    }

    #[test]
    fn display_and_parse() {
        assert_eq!(ratio(3, 2).to_string(), "3/2");
        assert_eq!(ratio(4, 2).to_string(), "2");
        assert_eq!("3/2".parse::<Rational>().unwrap(), ratio(3, 2));
        assert_eq!("-5".parse::<Rational>().unwrap(), ratio(-5, 1));
        assert!("1/0".parse::<Rational>().is_err());
        assert!("a/b".parse::<Rational>().is_err());
    }

    #[test]
    fn to_f64_reasonable() {
        assert!((ratio(1, 3).to_f64() - 1.0 / 3.0).abs() < 1e-12);
        assert!((ratio(-22, 7).to_f64() + 22.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn approx_f64_recovers_simple_fractions() {
        assert_eq!(Rational::approx_f64(0.5, 100).unwrap(), ratio(1, 2));
        assert_eq!(Rational::approx_f64(-0.75, 100).unwrap(), ratio(-3, 4));
        let third = Rational::approx_f64(1.0 / 3.0, 1000).unwrap();
        assert_eq!(third, ratio(1, 3));
        assert!(Rational::approx_f64(f64::NAN, 10).is_none());
        assert!(Rational::approx_f64(1.0, 0).is_none());
    }
}
