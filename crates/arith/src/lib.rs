//! Exact arithmetic substrate for `projtile`.
//!
//! The communication lower bounds and tilings of Dinh & Demmel (SPAA 2020) are
//! defined by small linear programs whose optimal values must be compared
//! *exactly*: Theorem 3 of the paper states that the optimum of the tiling LP
//! (5.1) equals one of the Theorem-2 exponents, and the test suite of this
//! workspace checks that equality literally. Floating point is not good enough
//! for that, so this crate provides:
//!
//! * [`BigInt`] — an arbitrary-precision signed integer (sign + magnitude,
//!   32-bit limbs), with the usual ring operations, Euclidean division, GCD,
//!   and exponentiation.
//! * [`Rational`] — an exact rational number over [`BigInt`], always kept in
//!   lowest terms with a positive denominator.
//! * [`log`] — helpers for representing `β_i = log_M L_i` as an exact rational
//!   when `L_i` and `M` share a common integer base (e.g. both are powers of
//!   two), and as a controlled rational approximation otherwise.
//!
//! The crate has no dependencies; it is deliberately small and heavily tested
//! (unit tests in each module plus property tests against `i128` semantics).
//!
//! # Representation and fast paths
//!
//! This crate is the hot path of the whole workspace — every Theorem-2 bound,
//! tiling LP, and tightness check bottoms out in `Rational` ops inside the
//! exact simplex solver — so both types are built around a small-value fast
//! path:
//!
//! * [`BigInt`] stores every value in `[i64::MIN, i64::MAX]` **inline**
//!   (`Small(i64)`), touching the heap only beyond 64 bits (`Large`:
//!   sign + 32-bit limbs). The representation is *canonical*: a value is
//!   `Large` iff it does not fit in `i64`, and `Large` limb vectors carry no
//!   trailing zeros. Every constructor restores this invariant, which is what
//!   makes the derived `Eq`/`Hash` value-correct. `Small × Small` arithmetic
//!   runs on machine integers (widened to `i128` where needed); multi-limb
//!   multiplication is schoolbook below 32 limbs and Karatsuba above;
//!   multi-limb division is limb-wise Knuth Algorithm D.
//! * [`Rational`] is always in lowest terms with a positive denominator.
//!   When all four components of a binary operation fit in `i64`, the op is
//!   one `i128` cross-multiplication plus one binary-GCD normalization
//!   ([`gcd_u64`]/[`gcd_u128`]) — no allocation. The fused
//!   [`Rational::sub_mul_assign`] / [`Rational::add_mul_assign`] perform the
//!   simplex row-update `x ← x ∓ f·p` with a *single* normalization, and
//!   [`Rational::cmp_div`] compares two quotients without forming either —
//!   these are the "gcd-light" kernels `projtile_lp::simplex` pivots on.
//!
//! The seed's simple algorithms (schoolbook multiplication, bit-by-bit binary
//! long division) are retained under `reference` (doc-hidden) and the
//! property suite (`tests/proptest_arith.rs`) checks the fast paths against
//! them *exactly*, limb-for-limb, alongside `i128` differential checks for
//! `Rational`.
//!
//! # Benchmark protocol
//!
//! Perf snapshots live in `BENCH_*.json` at the repository root; the full
//! protocol (how to produce a snapshot, what the baselines mean) is
//! documented in `docs/benchmarking.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bigint;
mod gcd;
pub mod log;
mod rational;

#[doc(hidden)]
pub use bigint::reference;
pub use bigint::{BigInt, Sign};
pub use gcd::{gcd_i128, gcd_u128, gcd_u64};
pub use rational::Rational;

/// Convenience constructor for a rational `num / den` from machine integers.
///
/// # Panics
/// Panics if `den == 0`.
pub fn ratio(num: i64, den: i64) -> Rational {
    Rational::from_frac(BigInt::from(num), BigInt::from(den))
}

/// Convenience constructor for an integer-valued rational.
pub fn int(value: i64) -> Rational {
    Rational::from_integer(BigInt::from(value))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_and_int_agree() {
        assert_eq!(ratio(4, 2), int(2));
        assert_eq!(ratio(-3, 6), ratio(1, -2));
        assert_eq!(ratio(0, 5), int(0));
    }
}
