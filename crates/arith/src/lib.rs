//! Exact arithmetic substrate for `projtile`.
//!
//! The communication lower bounds and tilings of Dinh & Demmel (SPAA 2020) are
//! defined by small linear programs whose optimal values must be compared
//! *exactly*: Theorem 3 of the paper states that the optimum of the tiling LP
//! (5.1) equals one of the Theorem-2 exponents, and the test suite of this
//! workspace checks that equality literally. Floating point is not good enough
//! for that, so this crate provides:
//!
//! * [`BigInt`] — an arbitrary-precision signed integer (sign + magnitude,
//!   32-bit limbs), with the usual ring operations, Euclidean division, GCD,
//!   and exponentiation.
//! * [`Rational`] — an exact rational number over [`BigInt`], always kept in
//!   lowest terms with a positive denominator.
//! * [`log`] — helpers for representing `β_i = log_M L_i` as an exact rational
//!   when `L_i` and `M` share a common integer base (e.g. both are powers of
//!   two), and as a controlled rational approximation otherwise.
//!
//! The crate has no dependencies; it is deliberately small and heavily tested
//! (unit tests in each module plus property tests against `i128` semantics).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bigint;
mod gcd;
pub mod log;
mod rational;

pub use bigint::{BigInt, Sign};
pub use gcd::{gcd_i128, gcd_u128};
pub use rational::Rational;

/// Convenience constructor for a rational `num / den` from machine integers.
///
/// # Panics
/// Panics if `den == 0`.
pub fn ratio(num: i64, den: i64) -> Rational {
    Rational::from_frac(BigInt::from(num), BigInt::from(den))
}

/// Convenience constructor for an integer-valued rational.
pub fn int(value: i64) -> Rational {
    Rational::from_integer(BigInt::from(value))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_and_int_agree() {
        assert_eq!(ratio(4, 2), int(2));
        assert_eq!(ratio(-3, 6), ratio(1, -2));
        assert_eq!(ratio(0, 5), int(0));
    }
}
