//! Arbitrary-precision signed integers.
//!
//! [`BigInt`] is a sign-magnitude integer with 32-bit limbs stored
//! little-endian. The representation is canonical: the limb vector never has
//! trailing zero limbs and the value zero is represented by an empty limb
//! vector with [`Sign::Zero`].
//!
//! The implementation favours clarity over asymptotic speed: multiplication is
//! schoolbook and division is binary long division. The integers appearing in
//! the exact simplex solver stay small (tens of digits at most for the LPs of
//! the paper), so this is more than fast enough, and the simple algorithms are
//! easy to audit for the exactness guarantees the rest of the workspace
//! depends on.

use core::cmp::Ordering;
use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Rem, Sub, SubAssign};
use core::str::FromStr;

/// Sign of a [`BigInt`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Sign {
    /// Strictly negative.
    Negative,
    /// Exactly zero.
    Zero,
    /// Strictly positive.
    Positive,
}

impl Sign {
    /// Returns the opposite sign (zero stays zero).
    pub fn negate(self) -> Sign {
        match self {
            Sign::Negative => Sign::Positive,
            Sign::Zero => Sign::Zero,
            Sign::Positive => Sign::Negative,
        }
    }

    /// Signum as an `i32` in `{-1, 0, 1}`.
    pub fn signum(self) -> i32 {
        match self {
            Sign::Negative => -1,
            Sign::Zero => 0,
            Sign::Positive => 1,
        }
    }
}

/// An arbitrary-precision signed integer.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BigInt {
    sign: Sign,
    /// Little-endian 32-bit limbs; empty iff the value is zero.
    limbs: Vec<u32>,
}

impl BigInt {
    /// The value `0`.
    pub fn zero() -> BigInt {
        BigInt { sign: Sign::Zero, limbs: Vec::new() }
    }

    /// The value `1`.
    pub fn one() -> BigInt {
        BigInt::from(1u32)
    }

    /// Returns `true` iff the value is zero.
    pub fn is_zero(&self) -> bool {
        self.sign == Sign::Zero
    }

    /// Returns `true` iff the value is one.
    pub fn is_one(&self) -> bool {
        self.sign == Sign::Positive && self.limbs.len() == 1 && self.limbs[0] == 1
    }

    /// Returns `true` iff the value is strictly negative.
    pub fn is_negative(&self) -> bool {
        self.sign == Sign::Negative
    }

    /// Returns `true` iff the value is strictly positive.
    pub fn is_positive(&self) -> bool {
        self.sign == Sign::Positive
    }

    /// The sign of the value.
    pub fn sign(&self) -> Sign {
        self.sign
    }

    /// Absolute value.
    pub fn abs(&self) -> BigInt {
        let mut out = self.clone();
        if out.sign == Sign::Negative {
            out.sign = Sign::Positive;
        }
        out
    }

    /// Number of bits in the magnitude (0 for zero).
    pub fn bit_len(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(&top) => (self.limbs.len() - 1) * 32 + (32 - top.leading_zeros() as usize),
        }
    }

    /// Returns bit `i` of the magnitude (little-endian bit order).
    fn magnitude_bit(&self, i: usize) -> bool {
        let limb = i / 32;
        let off = i % 32;
        match self.limbs.get(limb) {
            Some(&w) => (w >> off) & 1 == 1,
            None => false,
        }
    }

    fn from_limbs(sign: Sign, mut limbs: Vec<u32>) -> BigInt {
        while limbs.last() == Some(&0) {
            limbs.pop();
        }
        if limbs.is_empty() {
            BigInt::zero()
        } else {
            debug_assert_ne!(sign, Sign::Zero, "nonzero magnitude must carry a sign");
            BigInt { sign, limbs }
        }
    }

    /// Compares magnitudes, ignoring signs.
    fn cmp_magnitude(a: &[u32], b: &[u32]) -> Ordering {
        if a.len() != b.len() {
            return a.len().cmp(&b.len());
        }
        for (x, y) in a.iter().rev().zip(b.iter().rev()) {
            match x.cmp(y) {
                Ordering::Equal => continue,
                other => return other,
            }
        }
        Ordering::Equal
    }

    fn add_magnitude(a: &[u32], b: &[u32]) -> Vec<u32> {
        let (long, short) = if a.len() >= b.len() { (a, b) } else { (b, a) };
        let mut out = Vec::with_capacity(long.len() + 1);
        let mut carry: u64 = 0;
        for i in 0..long.len() {
            let s = long[i] as u64 + *short.get(i).unwrap_or(&0) as u64 + carry;
            out.push(s as u32);
            carry = s >> 32;
        }
        if carry != 0 {
            out.push(carry as u32);
        }
        out
    }

    /// Computes `a - b` for magnitudes, requiring `a >= b`.
    fn sub_magnitude(a: &[u32], b: &[u32]) -> Vec<u32> {
        debug_assert_ne!(Self::cmp_magnitude(a, b), Ordering::Less);
        let mut out = Vec::with_capacity(a.len());
        let mut borrow: i64 = 0;
        for i in 0..a.len() {
            let mut d = a[i] as i64 - *b.get(i).unwrap_or(&0) as i64 - borrow;
            if d < 0 {
                d += 1 << 32;
                borrow = 1;
            } else {
                borrow = 0;
            }
            out.push(d as u32);
        }
        debug_assert_eq!(borrow, 0);
        while out.last() == Some(&0) {
            out.pop();
        }
        out
    }

    fn mul_magnitude(a: &[u32], b: &[u32]) -> Vec<u32> {
        if a.is_empty() || b.is_empty() {
            return Vec::new();
        }
        let mut out = vec![0u32; a.len() + b.len()];
        for (i, &ai) in a.iter().enumerate() {
            if ai == 0 {
                continue;
            }
            let mut carry: u64 = 0;
            for (j, &bj) in b.iter().enumerate() {
                let cur = out[i + j] as u64 + ai as u64 * bj as u64 + carry;
                out[i + j] = cur as u32;
                carry = cur >> 32;
            }
            let mut k = i + b.len();
            while carry != 0 {
                let cur = out[k] as u64 + carry;
                out[k] = cur as u32;
                carry = cur >> 32;
                k += 1;
            }
        }
        while out.last() == Some(&0) {
            out.pop();
        }
        out
    }

    /// Shifts a magnitude left by one bit in place.
    fn shl1_magnitude(limbs: &mut Vec<u32>) {
        let mut carry = 0u32;
        for limb in limbs.iter_mut() {
            let new_carry = *limb >> 31;
            *limb = (*limb << 1) | carry;
            carry = new_carry;
        }
        if carry != 0 {
            limbs.push(carry);
        }
    }

    /// Magnitude division by binary long division. Returns `(quotient, remainder)`.
    fn divrem_magnitude(a: &[u32], b: &[u32]) -> (Vec<u32>, Vec<u32>) {
        assert!(!b.is_empty(), "division by zero BigInt");
        if Self::cmp_magnitude(a, b) == Ordering::Less {
            return (Vec::new(), a.to_vec());
        }
        // Fast path: single-limb divisor.
        if b.len() == 1 {
            let d = b[0] as u64;
            let mut q = vec![0u32; a.len()];
            let mut rem: u64 = 0;
            for i in (0..a.len()).rev() {
                let cur = (rem << 32) | a[i] as u64;
                q[i] = (cur / d) as u32;
                rem = cur % d;
            }
            while q.last() == Some(&0) {
                q.pop();
            }
            let r = if rem == 0 { Vec::new() } else { vec![rem as u32] };
            return (q, r);
        }
        // General case: shift-subtract long division over bits.
        let nbits = {
            let top = *a.last().unwrap();
            (a.len() - 1) * 32 + (32 - top.leading_zeros() as usize)
        };
        let mut quotient = vec![0u32; a.len()];
        let mut remainder: Vec<u32> = Vec::with_capacity(b.len() + 1);
        let a_big = BigInt { sign: Sign::Positive, limbs: a.to_vec() };
        for bit in (0..nbits).rev() {
            Self::shl1_magnitude(&mut remainder);
            if a_big.magnitude_bit(bit) {
                if remainder.is_empty() {
                    remainder.push(1);
                } else {
                    remainder[0] |= 1;
                }
            }
            if Self::cmp_magnitude(&remainder, b) != Ordering::Less {
                remainder = Self::sub_magnitude(&remainder, b);
                quotient[bit / 32] |= 1 << (bit % 32);
            }
        }
        while quotient.last() == Some(&0) {
            quotient.pop();
        }
        (quotient, remainder)
    }

    /// Truncated division: returns `(q, r)` with `self == q * rhs + r`,
    /// `|r| < |rhs|`, and `r` having the sign of `self` (or zero).
    ///
    /// # Panics
    /// Panics if `rhs` is zero.
    pub fn div_rem(&self, rhs: &BigInt) -> (BigInt, BigInt) {
        assert!(!rhs.is_zero(), "division by zero BigInt");
        if self.is_zero() {
            return (BigInt::zero(), BigInt::zero());
        }
        let (qm, rm) = Self::divrem_magnitude(&self.limbs, &rhs.limbs);
        let q_sign = if qm.is_empty() {
            Sign::Zero
        } else if self.sign == rhs.sign {
            Sign::Positive
        } else {
            Sign::Negative
        };
        let r_sign = if rm.is_empty() { Sign::Zero } else { self.sign };
        (BigInt::from_limbs(q_sign, qm), BigInt::from_limbs(r_sign, rm))
    }

    /// Greatest common divisor of the magnitudes (always non-negative).
    pub fn gcd(&self, rhs: &BigInt) -> BigInt {
        let mut a = self.abs();
        let mut b = rhs.abs();
        while !b.is_zero() {
            let (_, r) = a.div_rem(&b);
            a = b;
            b = r;
        }
        a
    }

    /// Raises the value to a non-negative integer power (`0^0 == 1`).
    pub fn pow(&self, mut exp: u32) -> BigInt {
        let mut base = self.clone();
        let mut acc = BigInt::one();
        while exp > 0 {
            if exp & 1 == 1 {
                acc = &acc * &base;
            }
            exp >>= 1;
            if exp > 0 {
                base = &base * &base;
            }
        }
        acc
    }

    /// Converts to `i128` if the value fits.
    pub fn to_i128(&self) -> Option<i128> {
        if self.bit_len() > 127 {
            return None;
        }
        let mut mag: u128 = 0;
        for &limb in self.limbs.iter().rev() {
            mag = (mag << 32) | limb as u128;
        }
        match self.sign {
            Sign::Zero => Some(0),
            Sign::Positive => i128::try_from(mag).ok(),
            Sign::Negative => Some(-(i128::try_from(mag).ok()?)),
        }
    }

    /// Converts to `u64` if the value is non-negative and fits.
    pub fn to_u64(&self) -> Option<u64> {
        if self.is_negative() || self.bit_len() > 64 {
            return None;
        }
        let mut mag: u64 = 0;
        for &limb in self.limbs.iter().rev() {
            mag = (mag << 32) | limb as u64;
        }
        Some(mag)
    }

    /// Lossy conversion to `f64` (saturating to infinity for huge values).
    pub fn to_f64(&self) -> f64 {
        let mut val = 0.0f64;
        for &limb in self.limbs.iter().rev() {
            val = val * 4294967296.0 + limb as f64;
        }
        match self.sign {
            Sign::Negative => -val,
            _ => val,
        }
    }
}

impl Default for BigInt {
    fn default() -> Self {
        BigInt::zero()
    }
}

macro_rules! impl_from_unsigned {
    ($($t:ty),*) => {$(
        impl From<$t> for BigInt {
            fn from(v: $t) -> BigInt {
                let mut v = v as u128;
                if v == 0 {
                    return BigInt::zero();
                }
                let mut limbs = Vec::new();
                while v > 0 {
                    limbs.push(v as u32);
                    v >>= 32;
                }
                BigInt { sign: Sign::Positive, limbs }
            }
        }
    )*};
}

macro_rules! impl_from_signed {
    ($($t:ty),*) => {$(
        impl From<$t> for BigInt {
            fn from(v: $t) -> BigInt {
                let mag = (v as i128).unsigned_abs();
                let mut out = BigInt::from(mag);
                if v < 0 {
                    out.sign = Sign::Negative;
                }
                out
            }
        }
    )*};
}

impl_from_unsigned!(u8, u16, u32, u64, u128, usize);
impl_from_signed!(i8, i16, i32, i64, i128, isize);

impl PartialOrd for BigInt {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigInt {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self.sign, other.sign) {
            (Sign::Zero, Sign::Zero) => Ordering::Equal,
            (Sign::Negative, Sign::Negative) => {
                Self::cmp_magnitude(&other.limbs, &self.limbs)
            }
            (Sign::Positive, Sign::Positive) => Self::cmp_magnitude(&self.limbs, &other.limbs),
            _ => self.sign.signum().cmp(&other.sign.signum()),
        }
    }
}

impl Neg for &BigInt {
    type Output = BigInt;
    fn neg(self) -> BigInt {
        let mut out = self.clone();
        out.sign = out.sign.negate();
        out
    }
}

impl Neg for BigInt {
    type Output = BigInt;
    fn neg(self) -> BigInt {
        -&self
    }
}

impl Add for &BigInt {
    type Output = BigInt;
    fn add(self, rhs: &BigInt) -> BigInt {
        match (self.sign, rhs.sign) {
            (Sign::Zero, _) => rhs.clone(),
            (_, Sign::Zero) => self.clone(),
            (a, b) if a == b => {
                BigInt::from_limbs(a, BigInt::add_magnitude(&self.limbs, &rhs.limbs))
            }
            _ => match BigInt::cmp_magnitude(&self.limbs, &rhs.limbs) {
                Ordering::Equal => BigInt::zero(),
                Ordering::Greater => BigInt::from_limbs(
                    self.sign,
                    BigInt::sub_magnitude(&self.limbs, &rhs.limbs),
                ),
                Ordering::Less => BigInt::from_limbs(
                    rhs.sign,
                    BigInt::sub_magnitude(&rhs.limbs, &self.limbs),
                ),
            },
        }
    }
}

impl Sub for &BigInt {
    type Output = BigInt;
    fn sub(self, rhs: &BigInt) -> BigInt {
        self + &(-rhs)
    }
}

impl Mul for &BigInt {
    type Output = BigInt;
    fn mul(self, rhs: &BigInt) -> BigInt {
        if self.is_zero() || rhs.is_zero() {
            return BigInt::zero();
        }
        let sign = if self.sign == rhs.sign { Sign::Positive } else { Sign::Negative };
        BigInt::from_limbs(sign, BigInt::mul_magnitude(&self.limbs, &rhs.limbs))
    }
}

impl Div for &BigInt {
    type Output = BigInt;
    fn div(self, rhs: &BigInt) -> BigInt {
        self.div_rem(rhs).0
    }
}

impl Rem for &BigInt {
    type Output = BigInt;
    fn rem(self, rhs: &BigInt) -> BigInt {
        self.div_rem(rhs).1
    }
}

macro_rules! forward_binop {
    ($trait:ident, $method:ident) => {
        impl $trait for BigInt {
            type Output = BigInt;
            fn $method(self, rhs: BigInt) -> BigInt {
                (&self).$method(&rhs)
            }
        }
        impl $trait<&BigInt> for BigInt {
            type Output = BigInt;
            fn $method(self, rhs: &BigInt) -> BigInt {
                (&self).$method(rhs)
            }
        }
        impl $trait<BigInt> for &BigInt {
            type Output = BigInt;
            fn $method(self, rhs: BigInt) -> BigInt {
                self.$method(&rhs)
            }
        }
    };
}

forward_binop!(Add, add);
forward_binop!(Sub, sub);
forward_binop!(Mul, mul);
forward_binop!(Div, div);
forward_binop!(Rem, rem);

impl AddAssign<&BigInt> for BigInt {
    fn add_assign(&mut self, rhs: &BigInt) {
        *self = &*self + rhs;
    }
}

impl SubAssign<&BigInt> for BigInt {
    fn sub_assign(&mut self, rhs: &BigInt) {
        *self = &*self - rhs;
    }
}

impl MulAssign<&BigInt> for BigInt {
    fn mul_assign(&mut self, rhs: &BigInt) {
        *self = &*self * rhs;
    }
}

impl fmt::Display for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        // Convert magnitude to decimal by repeated division by 10^9.
        let mut chunks: Vec<u32> = Vec::new();
        let mut mag = self.limbs.clone();
        let base = vec![1_000_000_000u32];
        while !mag.is_empty() {
            let (q, r) = BigInt::divrem_magnitude(&mag, &base);
            chunks.push(*r.first().unwrap_or(&0));
            mag = q;
        }
        if self.sign == Sign::Negative {
            write!(f, "-")?;
        }
        write!(f, "{}", chunks.last().unwrap())?;
        for chunk in chunks.iter().rev().skip(1) {
            write!(f, "{:09}", chunk)?;
        }
        Ok(())
    }
}

impl fmt::Debug for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigInt({})", self)
    }
}

/// Error returned when parsing a [`BigInt`] from a malformed string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseBigIntError;

impl fmt::Display for ParseBigIntError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid BigInt literal")
    }
}

impl std::error::Error for ParseBigIntError {}

impl FromStr for BigInt {
    type Err = ParseBigIntError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (neg, digits) = match s.strip_prefix('-') {
            Some(rest) => (true, rest),
            None => (false, s.strip_prefix('+').unwrap_or(s)),
        };
        if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
            return Err(ParseBigIntError);
        }
        let ten = BigInt::from(10u32);
        let mut acc = BigInt::zero();
        for b in digits.bytes() {
            acc = &(&acc * &ten) + &BigInt::from((b - b'0') as u32);
        }
        if neg {
            acc = -acc;
        }
        Ok(acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bi(v: i128) -> BigInt {
        BigInt::from(v)
    }

    #[test]
    fn construction_and_zero() {
        assert!(bi(0).is_zero());
        assert_eq!(bi(0), BigInt::zero());
        assert!(bi(5).is_positive());
        assert!(bi(-5).is_negative());
        assert_eq!(bi(1), BigInt::one());
        assert!(BigInt::one().is_one());
        assert!(!bi(2).is_one());
    }

    #[test]
    fn add_sub_small() {
        assert_eq!(&bi(3) + &bi(4), bi(7));
        assert_eq!(&bi(3) - &bi(4), bi(-1));
        assert_eq!(&bi(-3) + &bi(-4), bi(-7));
        assert_eq!(&bi(-3) - &bi(-4), bi(1));
        assert_eq!(&bi(0) + &bi(0), bi(0));
        assert_eq!(&bi(10) - &bi(10), bi(0));
    }

    #[test]
    fn mul_small() {
        assert_eq!(&bi(6) * &bi(7), bi(42));
        assert_eq!(&bi(-6) * &bi(7), bi(-42));
        assert_eq!(&bi(-6) * &bi(-7), bi(42));
        assert_eq!(&bi(0) * &bi(123456789), bi(0));
    }

    #[test]
    fn carries_across_limbs() {
        let a = bi((1i128 << 32) - 1);
        assert_eq!(&a + &bi(1), bi(1i128 << 32));
        let big = bi(u32::MAX as i128);
        assert_eq!(&big * &big, bi((u32::MAX as i128) * (u32::MAX as i128)));
        let big64 = bi(u64::MAX as i128);
        let expect: BigInt = "340282366920938463426481119284349108225".parse().unwrap();
        assert_eq!(&big64 * &big64, expect);
    }

    #[test]
    fn div_rem_matches_i128() {
        let cases: &[(i128, i128)] = &[
            (7, 3),
            (-7, 3),
            (7, -3),
            (-7, -3),
            (0, 5),
            (1 << 40, 3),
            (123456789012345678, 987654321),
            (-123456789012345678, 987654321),
        ];
        for &(a, b) in cases {
            let (q, r) = bi(a).div_rem(&bi(b));
            assert_eq!(q, bi(a / b), "quotient for {a}/{b}");
            assert_eq!(r, bi(a % b), "remainder for {a}%{b}");
        }
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_panics() {
        let _ = bi(1).div_rem(&bi(0));
    }

    #[test]
    fn gcd_matches_reference() {
        for a in -30i128..30 {
            for b in -30i128..30 {
                let expect = crate::gcd_i128(a, b);
                assert_eq!(bi(a).gcd(&bi(b)), bi(expect), "gcd({a},{b})");
            }
        }
    }

    #[test]
    fn pow_small() {
        assert_eq!(bi(2).pow(10), bi(1024));
        assert_eq!(bi(3).pow(0), bi(1));
        assert_eq!(bi(0).pow(0), bi(1));
        assert_eq!(bi(-2).pow(3), bi(-8));
        assert_eq!(bi(10).pow(20), "100000000000000000000".parse().unwrap());
    }

    #[test]
    fn ordering() {
        assert!(bi(-5) < bi(-1));
        assert!(bi(-1) < bi(0));
        assert!(bi(0) < bi(1));
        assert!(bi(1) < bi(5));
        assert!(bi(1i128 << 40) > bi(1i128 << 20));
        assert!(bi(-(1i128 << 40)) < bi(-(1i128 << 20)));
    }

    #[test]
    fn display_and_parse_roundtrip() {
        for v in [0i128, 1, -1, 42, -42, 1_000_000_007, i64::MAX as i128, i64::MIN as i128] {
            let s = bi(v).to_string();
            assert_eq!(s, v.to_string());
            assert_eq!(s.parse::<BigInt>().unwrap(), bi(v));
        }
        let huge = bi(10).pow(40);
        let s = huge.to_string();
        assert_eq!(s.len(), 41);
        assert_eq!(s.parse::<BigInt>().unwrap(), huge);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("".parse::<BigInt>().is_err());
        assert!("-".parse::<BigInt>().is_err());
        assert!("12a".parse::<BigInt>().is_err());
        assert!("1.5".parse::<BigInt>().is_err());
    }

    #[test]
    fn conversions() {
        assert_eq!(bi(12345).to_i128(), Some(12345));
        assert_eq!(bi(-12345).to_i128(), Some(-12345));
        assert_eq!(bi(12345).to_u64(), Some(12345));
        assert_eq!(bi(-1).to_u64(), None);
        assert_eq!(bi(10).pow(50).to_i128(), None);
        assert!((bi(1i128 << 80).to_f64() - (1i128 << 80) as f64).abs() < 1e10);
    }

    #[test]
    fn bit_len() {
        assert_eq!(bi(0).bit_len(), 0);
        assert_eq!(bi(1).bit_len(), 1);
        assert_eq!(bi(255).bit_len(), 8);
        assert_eq!(bi(256).bit_len(), 9);
        assert_eq!(bi(1i128 << 64).bit_len(), 65);
    }
}
