//! Arbitrary-precision signed integers with an inline small-value fast path.
//!
//! # Representation
//!
//! [`BigInt`] is a two-variant sum type:
//!
//! * `Small(i64)` — every value in `[i64::MIN, i64::MAX]` is stored inline,
//!   with no heap allocation. This is the representation the exact simplex
//!   solver lives in: the LPs of Dinh & Demmel (SPAA 2020) keep numerators
//!   and denominators at tens of digits *at most*, and in practice far below
//!   64 bits.
//! * `Large { sign, limbs }` — sign-magnitude with 32-bit little-endian
//!   limbs, used only when the magnitude exceeds `i64::MAX`.
//!
//! The representation is **canonical**: a value is `Large` *iff* it does not
//! fit in `i64`, and a `Large` limb vector never has trailing zero limbs.
//! Every constructor and operation re-establishes this invariant (see
//! [`BigInt::from_limbs`]), so the derived `PartialEq`/`Eq`/`Hash` are
//! value-correct.
//!
//! # Algorithms
//!
//! * `Small × Small` arithmetic fast-paths through machine integers
//!   (widening to `i128` where the result can overflow).
//! * Multi-limb multiplication is schoolbook below
//!   [`KARATSUBA_THRESHOLD`] limbs and Karatsuba above it.
//! * Multi-limb division is limb-wise Knuth Algorithm D (TAOCP vol. 2,
//!   §4.3.1), replacing the seed's bit-by-bit binary long division.
//!
//! The seed's simple algorithms are retained verbatim in [`reference`] and
//! the property suite checks the fast paths against them exactly
//! (`crates/arith/tests/proptest_arith.rs`).

use core::cmp::Ordering;
use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Rem, Sub, SubAssign};
use core::str::FromStr;

/// Limb count below which multi-limb multiplication stays schoolbook.
///
/// Karatsuba's ~25% instruction saving only overtakes its allocation and
/// recursion overhead for operands of a few dozen limbs; 32 limbs (1024 bits)
/// is a conservative crossover for 32-bit limbs.
const KARATSUBA_THRESHOLD: usize = 32;

/// Sign of a [`BigInt`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Sign {
    /// Strictly negative.
    Negative,
    /// Exactly zero.
    Zero,
    /// Strictly positive.
    Positive,
}

impl Sign {
    /// Returns the opposite sign (zero stays zero).
    pub fn negate(self) -> Sign {
        match self {
            Sign::Negative => Sign::Positive,
            Sign::Zero => Sign::Zero,
            Sign::Positive => Sign::Negative,
        }
    }

    /// Signum as an `i32` in `{-1, 0, 1}`.
    pub fn signum(self) -> i32 {
        match self {
            Sign::Negative => -1,
            Sign::Zero => 0,
            Sign::Positive => 1,
        }
    }
}

/// Internal representation; see the module docs for the canonical-form
/// invariant that makes the derived `Eq`/`Hash` value-correct.
#[derive(Clone, PartialEq, Eq, Hash)]
enum Repr {
    /// Inline value; used for every value that fits in `i64`.
    Small(i64),
    /// Sign + little-endian 32-bit limbs; magnitude always exceeds
    /// `i64::MAX`, so the limb vector has at least two limbs and no trailing
    /// zeros.
    Large { sign: Sign, limbs: Vec<u32> },
}

/// An arbitrary-precision signed integer.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BigInt {
    repr: Repr,
}

/// Stack buffer for viewing a `Small` value as magnitude limbs.
type SmallBuf = [u32; 2];

impl BigInt {
    /// The value `0`.
    pub fn zero() -> BigInt {
        BigInt {
            repr: Repr::Small(0),
        }
    }

    /// The value `1`.
    pub fn one() -> BigInt {
        BigInt {
            repr: Repr::Small(1),
        }
    }

    /// Returns `true` iff the value is zero.
    pub fn is_zero(&self) -> bool {
        matches!(self.repr, Repr::Small(0))
    }

    /// Returns `true` iff the value is one.
    pub fn is_one(&self) -> bool {
        matches!(self.repr, Repr::Small(1))
    }

    /// Returns `true` iff the value is strictly negative.
    pub fn is_negative(&self) -> bool {
        self.sign() == Sign::Negative
    }

    /// Returns `true` iff the value is strictly positive.
    pub fn is_positive(&self) -> bool {
        self.sign() == Sign::Positive
    }

    /// The sign of the value.
    pub fn sign(&self) -> Sign {
        match &self.repr {
            Repr::Small(v) => match v.cmp(&0) {
                Ordering::Less => Sign::Negative,
                Ordering::Equal => Sign::Zero,
                Ordering::Greater => Sign::Positive,
            },
            Repr::Large { sign, .. } => *sign,
        }
    }

    /// The value as an `i64`, exactly when it fits.
    ///
    /// Because the representation is canonical this is `Some` *iff* the value
    /// is stored inline, so callers can use it to detect the fast path.
    pub fn to_i64(&self) -> Option<i64> {
        match &self.repr {
            Repr::Small(v) => Some(*v),
            Repr::Large { .. } => None,
        }
    }

    /// Absolute value.
    pub fn abs(&self) -> BigInt {
        match &self.repr {
            Repr::Small(v) => match v.checked_abs() {
                Some(a) => BigInt {
                    repr: Repr::Small(a),
                },
                // |i64::MIN| = 2^63 does not fit in i64.
                None => BigInt::from_u128_sign(Sign::Positive, 1u128 << 63),
            },
            Repr::Large { limbs, .. } => BigInt {
                repr: Repr::Large {
                    sign: Sign::Positive,
                    limbs: limbs.clone(),
                },
            },
        }
    }

    /// Number of bits in the magnitude (0 for zero).
    pub fn bit_len(&self) -> usize {
        match &self.repr {
            Repr::Small(v) => (64 - v.unsigned_abs().leading_zeros()) as usize,
            Repr::Large { limbs, .. } => {
                let top = *limbs.last().expect("Large is non-empty");
                (limbs.len() - 1) * 32 + (32 - top.leading_zeros() as usize)
            }
        }
    }

    /// Views the magnitude as limbs, using `buf` as backing storage for
    /// inline values. Returns the sign alongside.
    fn parts<'a>(&'a self, buf: &'a mut SmallBuf) -> (Sign, &'a [u32]) {
        match &self.repr {
            Repr::Small(v) => {
                let mag = v.unsigned_abs();
                buf[0] = mag as u32;
                buf[1] = (mag >> 32) as u32;
                let len = if mag == 0 {
                    0
                } else if mag >> 32 == 0 {
                    1
                } else {
                    2
                };
                (self.sign(), &buf[..len])
            }
            Repr::Large { sign, limbs } => (*sign, limbs.as_slice()),
        }
    }

    /// Builds a value from a sign and magnitude limbs, restoring the
    /// canonical form (trailing zeros trimmed, small magnitudes demoted to
    /// the inline representation).
    fn from_limbs(sign: Sign, mut limbs: Vec<u32>) -> BigInt {
        while limbs.last() == Some(&0) {
            limbs.pop();
        }
        if limbs.is_empty() {
            return BigInt::zero();
        }
        debug_assert_ne!(sign, Sign::Zero, "nonzero magnitude must carry a sign");
        if limbs.len() <= 2 {
            let mag = limbs[0] as u64 | ((*limbs.get(1).unwrap_or(&0) as u64) << 32);
            if let Some(small) = small_from_mag(sign, mag) {
                return BigInt {
                    repr: Repr::Small(small),
                };
            }
        }
        BigInt {
            repr: Repr::Large { sign, limbs },
        }
    }

    /// Builds a value from a sign and a `u128` magnitude.
    fn from_u128_sign(sign: Sign, mag: u128) -> BigInt {
        if mag == 0 {
            return BigInt::zero();
        }
        if let Some(small) = u64::try_from(mag)
            .ok()
            .and_then(|m| small_from_mag(sign, m))
        {
            return BigInt {
                repr: Repr::Small(small),
            };
        }
        let mut limbs = Vec::with_capacity(4);
        let mut m = mag;
        while m > 0 {
            limbs.push(m as u32);
            m >>= 32;
        }
        BigInt {
            repr: Repr::Large { sign, limbs },
        }
    }

    /// Builds a value from an `i128`.
    fn from_i128_value(v: i128) -> BigInt {
        if let Ok(small) = i64::try_from(v) {
            return BigInt {
                repr: Repr::Small(small),
            };
        }
        let sign = if v < 0 {
            Sign::Negative
        } else {
            Sign::Positive
        };
        BigInt::from_u128_sign(sign, v.unsigned_abs())
    }

    /// Compares magnitudes, ignoring signs.
    fn cmp_magnitude(a: &[u32], b: &[u32]) -> Ordering {
        if a.len() != b.len() {
            return a.len().cmp(&b.len());
        }
        for (x, y) in a.iter().rev().zip(b.iter().rev()) {
            match x.cmp(y) {
                Ordering::Equal => continue,
                other => return other,
            }
        }
        Ordering::Equal
    }

    fn add_magnitude(a: &[u32], b: &[u32]) -> Vec<u32> {
        let (long, short) = if a.len() >= b.len() { (a, b) } else { (b, a) };
        let mut out = Vec::with_capacity(long.len() + 1);
        let mut carry: u64 = 0;
        for (i, &w) in long.iter().enumerate() {
            let s = w as u64 + *short.get(i).unwrap_or(&0) as u64 + carry;
            out.push(s as u32);
            carry = s >> 32;
        }
        if carry != 0 {
            out.push(carry as u32);
        }
        out
    }

    /// Computes `a - b` for magnitudes, requiring `a >= b`.
    fn sub_magnitude(a: &[u32], b: &[u32]) -> Vec<u32> {
        debug_assert_ne!(Self::cmp_magnitude(a, b), Ordering::Less);
        let mut out = Vec::with_capacity(a.len());
        let mut borrow: i64 = 0;
        for (i, &w) in a.iter().enumerate() {
            let mut d = w as i64 - *b.get(i).unwrap_or(&0) as i64 - borrow;
            if d < 0 {
                d += 1 << 32;
                borrow = 1;
            } else {
                borrow = 0;
            }
            out.push(d as u32);
        }
        debug_assert_eq!(borrow, 0);
        while out.last() == Some(&0) {
            out.pop();
        }
        out
    }

    /// Schoolbook magnitude multiplication (quadratic; used below the
    /// Karatsuba threshold and by the [`reference`] implementations).
    fn mul_magnitude_schoolbook(a: &[u32], b: &[u32]) -> Vec<u32> {
        if a.is_empty() || b.is_empty() {
            return Vec::new();
        }
        let mut out = vec![0u32; a.len() + b.len()];
        for (i, &ai) in a.iter().enumerate() {
            if ai == 0 {
                continue;
            }
            let mut carry: u64 = 0;
            for (j, &bj) in b.iter().enumerate() {
                let cur = out[i + j] as u64 + ai as u64 * bj as u64 + carry;
                out[i + j] = cur as u32;
                carry = cur >> 32;
            }
            let mut k = i + b.len();
            while carry != 0 {
                let cur = out[k] as u64 + carry;
                out[k] = cur as u32;
                carry = cur >> 32;
                k += 1;
            }
        }
        while out.last() == Some(&0) {
            out.pop();
        }
        out
    }

    /// Adds `addend << (32 * shift)` into `acc` in place.
    fn add_into_shifted(acc: &mut Vec<u32>, addend: &[u32], shift: usize) {
        if addend.is_empty() {
            return;
        }
        if acc.len() < shift + addend.len() {
            acc.resize(shift + addend.len(), 0);
        }
        let mut carry: u64 = 0;
        for (i, &w) in addend.iter().enumerate() {
            let s = acc[shift + i] as u64 + w as u64 + carry;
            acc[shift + i] = s as u32;
            carry = s >> 32;
        }
        let mut k = shift + addend.len();
        while carry != 0 {
            if k == acc.len() {
                acc.push(carry as u32);
                break;
            }
            let s = acc[k] as u64 + carry;
            acc[k] = s as u32;
            carry = s >> 32;
            k += 1;
        }
    }

    /// Magnitude multiplication: schoolbook below [`KARATSUBA_THRESHOLD`]
    /// limbs, Karatsuba above it.
    fn mul_magnitude(a: &[u32], b: &[u32]) -> Vec<u32> {
        if a.len().min(b.len()) < KARATSUBA_THRESHOLD {
            return Self::mul_magnitude_schoolbook(a, b);
        }
        // Karatsuba: split both operands at m limbs; with
        // a = a0 + a1·B^m and b = b0 + b1·B^m,
        //   a·b = z0 + z1·B^m + z2·B^{2m}
        // where z0 = a0·b0, z2 = a1·b1, and
        //   z1 = (a0 + a1)(b0 + b1) − z0 − z2.
        let m = a.len().max(b.len()).div_ceil(2);
        let (a0, a1) = (&a[..m.min(a.len())], a.get(m..).unwrap_or(&[]));
        let (b0, b1) = (&b[..m.min(b.len())], b.get(m..).unwrap_or(&[]));
        let z0 = Self::mul_magnitude(trim(a0), trim(b0));
        let z2 = Self::mul_magnitude(a1, b1);
        let sa = Self::add_magnitude(trim(a0), a1);
        let sb = Self::add_magnitude(trim(b0), b1);
        let mut z1 = Self::mul_magnitude(&sa, &sb);
        z1 = Self::sub_magnitude(&z1, &z0);
        z1 = Self::sub_magnitude(&z1, &z2);

        let mut out = z0;
        Self::add_into_shifted(&mut out, &z1, m);
        Self::add_into_shifted(&mut out, &z2, 2 * m);
        while out.last() == Some(&0) {
            out.pop();
        }
        out
    }

    /// Divides a magnitude by a single limb. Returns `(quotient, remainder)`.
    fn divrem_by_limb(a: &[u32], d: u32) -> (Vec<u32>, u32) {
        debug_assert!(d != 0);
        let d = d as u64;
        let mut q = vec![0u32; a.len()];
        let mut rem: u64 = 0;
        for i in (0..a.len()).rev() {
            let cur = (rem << 32) | a[i] as u64;
            q[i] = (cur / d) as u32;
            rem = cur % d;
        }
        while q.last() == Some(&0) {
            q.pop();
        }
        (q, rem as u32)
    }

    /// Shifts a magnitude left by `shift < 32` bits, appending a spill limb.
    fn shl_bits_with_spill(a: &[u32], shift: u32) -> Vec<u32> {
        let mut out = Vec::with_capacity(a.len() + 1);
        let mut carry = 0u32;
        for &w in a {
            if shift == 0 {
                out.push(w);
            } else {
                out.push((w << shift) | carry);
                carry = w >> (32 - shift);
            }
        }
        out.push(carry);
        out
    }

    /// Shifts a magnitude right by `shift < 32` bits, trimming zeros.
    fn shr_bits(a: &[u32], shift: u32) -> Vec<u32> {
        let mut out = a.to_vec();
        if shift != 0 {
            for i in 0..out.len() {
                let hi = out.get(i + 1).copied().unwrap_or(0);
                out[i] = (out[i] >> shift) | (hi << (32 - shift));
            }
        }
        while out.last() == Some(&0) {
            out.pop();
        }
        out
    }

    /// Multi-limb magnitude division by Knuth Algorithm D (TAOCP vol. 2,
    /// §4.3.1). Requires `b.len() >= 2` and `a >= b`.
    fn divrem_magnitude_knuth(a: &[u32], b: &[u32]) -> (Vec<u32>, Vec<u32>) {
        let n = b.len();
        debug_assert!(n >= 2);
        debug_assert_ne!(Self::cmp_magnitude(a, b), Ordering::Less);

        // D1: normalize so the divisor's top limb has its high bit set; the
        // dividend gains one (possibly zero) spill limb.
        let shift = b[n - 1].leading_zeros();
        let mut u = Self::shl_bits_with_spill(a, shift);
        let mut v = Self::shl_bits_with_spill(b, shift);
        debug_assert_eq!(v.pop(), Some(0), "normalization never spills the divisor");
        debug_assert!(v[n - 1] >= 1 << 31);

        let m = u.len() - 1 - n;
        let mut q = vec![0u32; m + 1];
        let vn1 = v[n - 1] as u64;
        let vn2 = v[n - 2] as u64;

        // D2–D7: one quotient limb per iteration, most significant first.
        for j in (0..=m).rev() {
            // D3: estimate the quotient limb from the top three dividend
            // limbs and top two divisor limbs; the estimate is at most 2 too
            // large, corrected by the loop below and the add-back step.
            let top = ((u[j + n] as u64) << 32) | u[j + n - 1] as u64;
            let mut qhat = top / vn1;
            let mut rhat = top % vn1;
            while qhat >= 1 << 32 || qhat * vn2 > ((rhat << 32) | u[j + n - 2] as u64) {
                qhat -= 1;
                rhat += vn1;
                if rhat >= 1 << 32 {
                    break;
                }
            }

            // D4: multiply-subtract qhat·v from u[j..=j+n] (wrapping on
            // underflow, detected via the final borrow).
            let mut mul_carry: u64 = 0;
            let mut borrow: i64 = 0;
            for i in 0..n {
                let p = qhat * v[i] as u64 + mul_carry;
                mul_carry = p >> 32;
                let t = u[j + i] as i64 - (p as u32) as i64 - borrow;
                u[j + i] = t as u32;
                borrow = i64::from(t < 0);
            }
            let t = u[j + n] as i64 - mul_carry as i64 - borrow;
            u[j + n] = t as u32;

            // D5/D6: if the subtraction underflowed, the estimate was one too
            // large — add one multiple of v back.
            if t < 0 {
                qhat -= 1;
                let mut carry: u64 = 0;
                for i in 0..n {
                    let s = u[j + i] as u64 + v[i] as u64 + carry;
                    u[j + i] = s as u32;
                    carry = s >> 32;
                }
                u[j + n] = (u[j + n] as u64).wrapping_add(carry) as u32;
            }
            q[j] = qhat as u32;
        }

        // D8: denormalize the remainder.
        while q.last() == Some(&0) {
            q.pop();
        }
        let rem = Self::shr_bits(&u[..n], shift);
        (q, rem)
    }

    /// Magnitude division dispatch. Returns `(quotient, remainder)`.
    fn divrem_magnitude(a: &[u32], b: &[u32]) -> (Vec<u32>, Vec<u32>) {
        assert!(!b.is_empty(), "division by zero BigInt");
        if Self::cmp_magnitude(a, b) == Ordering::Less {
            return (Vec::new(), a.to_vec());
        }
        if b.len() == 1 {
            let (q, r) = Self::divrem_by_limb(a, b[0]);
            let rem = if r == 0 { Vec::new() } else { vec![r] };
            return (q, rem);
        }
        Self::divrem_magnitude_knuth(a, b)
    }

    /// Truncated division: returns `(q, r)` with `self == q * rhs + r`,
    /// `|r| < |rhs|`, and `r` having the sign of `self` (or zero).
    ///
    /// # Panics
    /// Panics if `rhs` is zero.
    // lint: allow(L008) long-division loop invariant (non-zero divisor checked above) pinned by asserts, covered by differential oracles
    pub fn div_rem(&self, rhs: &BigInt) -> (BigInt, BigInt) {
        if let (Repr::Small(a), Repr::Small(b)) = (&self.repr, &rhs.repr) {
            assert!(*b != 0, "division by zero BigInt");
            // i64::MIN / -1 overflows i64; widen that one case.
            return match (a.checked_div(*b), a.checked_rem(*b)) {
                (Some(q), Some(r)) => (
                    BigInt {
                        repr: Repr::Small(q),
                    },
                    BigInt {
                        repr: Repr::Small(r),
                    },
                ),
                _ => (
                    BigInt::from_i128_value(*a as i128 / *b as i128),
                    BigInt::from_i128_value(*a as i128 % *b as i128),
                ),
            };
        }
        assert!(!rhs.is_zero(), "division by zero BigInt");
        if self.is_zero() {
            return (BigInt::zero(), BigInt::zero());
        }
        let (mut abuf, mut bbuf) = ([0u32; 2], [0u32; 2]);
        let (a_sign, a_mag) = self.parts(&mut abuf);
        let (b_sign, b_mag) = rhs.parts(&mut bbuf);
        let (qm, rm) = Self::divrem_magnitude(a_mag, b_mag);
        let q_sign = if qm.is_empty() {
            Sign::Zero
        } else if a_sign == b_sign {
            Sign::Positive
        } else {
            Sign::Negative
        };
        let r_sign = if rm.is_empty() { Sign::Zero } else { a_sign };
        (
            BigInt::from_limbs(q_sign, qm),
            BigInt::from_limbs(r_sign, rm),
        )
    }

    /// Greatest common divisor of the magnitudes (always non-negative).
    pub fn gcd(&self, rhs: &BigInt) -> BigInt {
        if let (Repr::Small(a), Repr::Small(b)) = (&self.repr, &rhs.repr) {
            let g = crate::gcd::gcd_u64(a.unsigned_abs(), b.unsigned_abs());
            return BigInt::from_u128_sign(Sign::Positive, g as u128);
        }
        // Euclid on magnitudes; each step drops to the small fast path as
        // soon as both operands fit in i64.
        let mut a = self.abs();
        let mut b = rhs.abs();
        while !b.is_zero() {
            if let (Some(x), Some(y)) = (a.to_i64(), b.to_i64()) {
                let g = crate::gcd::gcd_u64(x.unsigned_abs(), y.unsigned_abs());
                return BigInt::from_u128_sign(Sign::Positive, g as u128);
            }
            let (_, r) = a.div_rem(&b);
            a = b;
            b = r;
        }
        a
    }

    /// Raises the value to a non-negative integer power (`0^0 == 1`).
    pub fn pow(&self, mut exp: u32) -> BigInt {
        let mut base = self.clone();
        let mut acc = BigInt::one();
        while exp > 0 {
            if exp & 1 == 1 {
                acc = &acc * &base;
            }
            exp >>= 1;
            if exp > 0 {
                base = &base * &base;
            }
        }
        acc
    }

    /// Converts to `i128` if the value fits.
    pub fn to_i128(&self) -> Option<i128> {
        match &self.repr {
            Repr::Small(v) => Some(*v as i128),
            Repr::Large { sign, limbs } => {
                if self.bit_len() > 127 {
                    return None;
                }
                let mut mag: u128 = 0;
                for &limb in limbs.iter().rev() {
                    mag = (mag << 32) | limb as u128;
                }
                match sign {
                    Sign::Zero => Some(0),
                    Sign::Positive => i128::try_from(mag).ok(),
                    Sign::Negative => Some(-(i128::try_from(mag).ok()?)),
                }
            }
        }
    }

    /// Converts to `u64` if the value is non-negative and fits.
    pub fn to_u64(&self) -> Option<u64> {
        match &self.repr {
            Repr::Small(v) => u64::try_from(*v).ok(),
            Repr::Large { sign, limbs } => {
                if *sign == Sign::Negative || limbs.len() > 2 {
                    return None;
                }
                let mut mag: u64 = 0;
                for &limb in limbs.iter().rev() {
                    mag = (mag << 32) | limb as u64;
                }
                Some(mag)
            }
        }
    }

    /// Lossy conversion to `f64` (saturating to infinity for huge values).
    pub fn to_f64(&self) -> f64 {
        match &self.repr {
            Repr::Small(v) => *v as f64,
            Repr::Large { sign, limbs } => {
                let mut val = 0.0f64;
                for &limb in limbs.iter().rev() {
                    val = val * 4294967296.0 + limb as f64;
                }
                match sign {
                    Sign::Negative => -val,
                    _ => val,
                }
            }
        }
    }
}

/// Converts a sign + `u64` magnitude to the inline representation if it fits.
fn small_from_mag(sign: Sign, mag: u64) -> Option<i64> {
    match sign {
        Sign::Zero => Some(0),
        Sign::Positive => i64::try_from(mag).ok(),
        Sign::Negative => {
            if mag <= 1 << 63 {
                Some((mag as i64).wrapping_neg())
            } else {
                None
            }
        }
    }
}

/// Trims trailing zero limbs from a slice view.
fn trim(mut a: &[u32]) -> &[u32] {
    while a.last() == Some(&0) {
        a = &a[..a.len() - 1];
    }
    a
}

/// Reference implementations of the seed's simple algorithms (schoolbook
/// multiplication, bit-by-bit binary long division), kept as the oracle for
/// the differential property tests of the fast paths. Not part of the public
/// API surface.
#[doc(hidden)]
pub mod reference {
    use super::{BigInt, Sign};
    use core::cmp::Ordering;

    /// Shifts a magnitude left by one bit in place.
    fn shl1_magnitude(limbs: &mut Vec<u32>) {
        let mut carry = 0u32;
        for limb in limbs.iter_mut() {
            let new_carry = *limb >> 31;
            *limb = (*limb << 1) | carry;
            carry = new_carry;
        }
        if carry != 0 {
            limbs.push(carry);
        }
    }

    fn magnitude_bit(limbs: &[u32], i: usize) -> bool {
        match limbs.get(i / 32) {
            Some(&w) => (w >> (i % 32)) & 1 == 1,
            None => false,
        }
    }

    /// Schoolbook multiplication with full sign handling.
    pub fn schoolbook_mul(a: &BigInt, b: &BigInt) -> BigInt {
        if a.is_zero() || b.is_zero() {
            return BigInt::zero();
        }
        let (mut abuf, mut bbuf) = ([0u32; 2], [0u32; 2]);
        let (a_sign, a_mag) = a.parts(&mut abuf);
        let (b_sign, b_mag) = b.parts(&mut bbuf);
        let sign = if a_sign == b_sign {
            Sign::Positive
        } else {
            Sign::Negative
        };
        BigInt::from_limbs(sign, BigInt::mul_magnitude_schoolbook(a_mag, b_mag))
    }

    /// Bit-by-bit binary long division (truncated), the seed's algorithm.
    ///
    /// # Panics
    /// Panics if `b` is zero.
    pub fn binary_long_divrem(a: &BigInt, b: &BigInt) -> (BigInt, BigInt) {
        assert!(!b.is_zero(), "division by zero BigInt");
        if a.is_zero() {
            return (BigInt::zero(), BigInt::zero());
        }
        let (mut abuf, mut bbuf) = ([0u32; 2], [0u32; 2]);
        let (a_sign, a_mag) = a.parts(&mut abuf);
        let (b_sign, b_mag) = b.parts(&mut bbuf);

        let (qm, rm) = if BigInt::cmp_magnitude(a_mag, b_mag) == Ordering::Less {
            (Vec::new(), a_mag.to_vec())
        } else {
            let nbits = a.bit_len();
            let mut quotient = vec![0u32; a_mag.len()];
            let mut remainder: Vec<u32> = Vec::with_capacity(b_mag.len() + 1);
            for bit in (0..nbits).rev() {
                shl1_magnitude(&mut remainder);
                if magnitude_bit(a_mag, bit) {
                    if remainder.is_empty() {
                        remainder.push(1);
                    } else {
                        remainder[0] |= 1;
                    }
                }
                if BigInt::cmp_magnitude(&remainder, b_mag) != Ordering::Less {
                    remainder = BigInt::sub_magnitude(&remainder, b_mag);
                    quotient[bit / 32] |= 1 << (bit % 32);
                }
            }
            while quotient.last() == Some(&0) {
                quotient.pop();
            }
            (quotient, remainder)
        };

        let q_sign = if qm.is_empty() {
            Sign::Zero
        } else if a_sign == b_sign {
            Sign::Positive
        } else {
            Sign::Negative
        };
        let r_sign = if rm.is_empty() { Sign::Zero } else { a_sign };
        (
            BigInt::from_limbs(q_sign, qm),
            BigInt::from_limbs(r_sign, rm),
        )
    }
}

impl Default for BigInt {
    fn default() -> Self {
        BigInt::zero()
    }
}

macro_rules! impl_from_small_int {
    ($($t:ty),*) => {$(
        impl From<$t> for BigInt {
            fn from(v: $t) -> BigInt {
                BigInt { repr: Repr::Small(v as i64) }
            }
        }
    )*};
}

impl_from_small_int!(u8, u16, u32, i8, i16, i32, i64);

impl From<u64> for BigInt {
    fn from(v: u64) -> BigInt {
        BigInt::from_u128_sign(Sign::Positive, v as u128)
    }
}

impl From<u128> for BigInt {
    fn from(v: u128) -> BigInt {
        BigInt::from_u128_sign(Sign::Positive, v)
    }
}

impl From<usize> for BigInt {
    fn from(v: usize) -> BigInt {
        BigInt::from_u128_sign(Sign::Positive, v as u128)
    }
}

impl From<i128> for BigInt {
    fn from(v: i128) -> BigInt {
        BigInt::from_i128_value(v)
    }
}

impl From<isize> for BigInt {
    fn from(v: isize) -> BigInt {
        BigInt::from_i128_value(v as i128)
    }
}

impl PartialOrd for BigInt {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigInt {
    fn cmp(&self, other: &Self) -> Ordering {
        match (&self.repr, &other.repr) {
            (Repr::Small(a), Repr::Small(b)) => a.cmp(b),
            // Canonical form: a Large magnitude always exceeds any Small one.
            (Repr::Small(_), Repr::Large { sign, .. }) => match sign {
                Sign::Negative => Ordering::Greater,
                _ => Ordering::Less,
            },
            (Repr::Large { sign, .. }, Repr::Small(_)) => match sign {
                Sign::Negative => Ordering::Less,
                _ => Ordering::Greater,
            },
            (
                Repr::Large {
                    sign: sa,
                    limbs: la,
                },
                Repr::Large {
                    sign: sb,
                    limbs: lb,
                },
            ) => match (sa, sb) {
                (Sign::Negative, Sign::Negative) => Self::cmp_magnitude(lb, la),
                (Sign::Positive, Sign::Positive) => Self::cmp_magnitude(la, lb),
                _ => sa.signum().cmp(&sb.signum()),
            },
        }
    }
}

impl Neg for &BigInt {
    type Output = BigInt;
    fn neg(self) -> BigInt {
        match &self.repr {
            Repr::Small(v) => match v.checked_neg() {
                Some(n) => BigInt {
                    repr: Repr::Small(n),
                },
                None => BigInt::from_u128_sign(Sign::Positive, 1u128 << 63),
            },
            // from_limbs re-canonicalizes: negating 2^63 lands on i64::MIN.
            Repr::Large { sign, limbs } => BigInt::from_limbs(sign.negate(), limbs.clone()),
        }
    }
}

impl Neg for BigInt {
    type Output = BigInt;
    fn neg(self) -> BigInt {
        match self.repr {
            Repr::Small(v) => match v.checked_neg() {
                Some(n) => BigInt {
                    repr: Repr::Small(n),
                },
                None => BigInt::from_u128_sign(Sign::Positive, 1u128 << 63),
            },
            Repr::Large { sign, limbs } => BigInt::from_limbs(sign.negate(), limbs),
        }
    }
}

impl Add for &BigInt {
    type Output = BigInt;
    fn add(self, rhs: &BigInt) -> BigInt {
        if let (Repr::Small(a), Repr::Small(b)) = (&self.repr, &rhs.repr) {
            return match a.checked_add(*b) {
                Some(s) => BigInt {
                    repr: Repr::Small(s),
                },
                None => BigInt::from_i128_value(*a as i128 + *b as i128),
            };
        }
        let (mut abuf, mut bbuf) = ([0u32; 2], [0u32; 2]);
        let (a_sign, a_mag) = self.parts(&mut abuf);
        let (b_sign, b_mag) = rhs.parts(&mut bbuf);
        match (a_sign, b_sign) {
            (Sign::Zero, _) => rhs.clone(),
            (_, Sign::Zero) => self.clone(),
            (a, b) if a == b => BigInt::from_limbs(a, BigInt::add_magnitude(a_mag, b_mag)),
            _ => match BigInt::cmp_magnitude(a_mag, b_mag) {
                Ordering::Equal => BigInt::zero(),
                Ordering::Greater => {
                    BigInt::from_limbs(a_sign, BigInt::sub_magnitude(a_mag, b_mag))
                }
                Ordering::Less => BigInt::from_limbs(b_sign, BigInt::sub_magnitude(b_mag, a_mag)),
            },
        }
    }
}

impl Sub for &BigInt {
    type Output = BigInt;
    fn sub(self, rhs: &BigInt) -> BigInt {
        if let (Repr::Small(a), Repr::Small(b)) = (&self.repr, &rhs.repr) {
            return match a.checked_sub(*b) {
                Some(s) => BigInt {
                    repr: Repr::Small(s),
                },
                None => BigInt::from_i128_value(*a as i128 - *b as i128),
            };
        }
        self + &(-rhs)
    }
}

impl Mul for &BigInt {
    type Output = BigInt;
    fn mul(self, rhs: &BigInt) -> BigInt {
        if let (Repr::Small(a), Repr::Small(b)) = (&self.repr, &rhs.repr) {
            // i64 × i64 always fits in i128.
            return BigInt::from_i128_value(*a as i128 * *b as i128);
        }
        if self.is_zero() || rhs.is_zero() {
            return BigInt::zero();
        }
        let (mut abuf, mut bbuf) = ([0u32; 2], [0u32; 2]);
        let (a_sign, a_mag) = self.parts(&mut abuf);
        let (b_sign, b_mag) = rhs.parts(&mut bbuf);
        let sign = if a_sign == b_sign {
            Sign::Positive
        } else {
            Sign::Negative
        };
        BigInt::from_limbs(sign, BigInt::mul_magnitude(a_mag, b_mag))
    }
}

impl Div for &BigInt {
    type Output = BigInt;
    fn div(self, rhs: &BigInt) -> BigInt {
        self.div_rem(rhs).0
    }
}

impl Rem for &BigInt {
    type Output = BigInt;
    fn rem(self, rhs: &BigInt) -> BigInt {
        self.div_rem(rhs).1
    }
}

macro_rules! forward_binop {
    ($trait:ident, $method:ident) => {
        impl $trait for BigInt {
            type Output = BigInt;
            fn $method(self, rhs: BigInt) -> BigInt {
                (&self).$method(&rhs)
            }
        }
        impl $trait<&BigInt> for BigInt {
            type Output = BigInt;
            fn $method(self, rhs: &BigInt) -> BigInt {
                (&self).$method(rhs)
            }
        }
        impl $trait<BigInt> for &BigInt {
            type Output = BigInt;
            fn $method(self, rhs: BigInt) -> BigInt {
                self.$method(&rhs)
            }
        }
    };
}

forward_binop!(Add, add);
forward_binop!(Sub, sub);
forward_binop!(Mul, mul);
forward_binop!(Div, div);
forward_binop!(Rem, rem);

impl AddAssign<&BigInt> for BigInt {
    fn add_assign(&mut self, rhs: &BigInt) {
        if let (Repr::Small(a), Repr::Small(b)) = (&self.repr, &rhs.repr) {
            if let Some(s) = a.checked_add(*b) {
                self.repr = Repr::Small(s);
                return;
            }
        }
        *self = &*self + rhs;
    }
}

impl SubAssign<&BigInt> for BigInt {
    fn sub_assign(&mut self, rhs: &BigInt) {
        if let (Repr::Small(a), Repr::Small(b)) = (&self.repr, &rhs.repr) {
            if let Some(s) = a.checked_sub(*b) {
                self.repr = Repr::Small(s);
                return;
            }
        }
        *self = &*self - rhs;
    }
}

impl MulAssign<&BigInt> for BigInt {
    fn mul_assign(&mut self, rhs: &BigInt) {
        *self = &*self * rhs;
    }
}

impl fmt::Display for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.repr {
            Repr::Small(v) => write!(f, "{v}"),
            Repr::Large { sign, limbs } => {
                // Convert the magnitude to decimal by repeated division by 10^9.
                let mut chunks: Vec<u32> = Vec::new();
                let mut mag = limbs.clone();
                while !mag.is_empty() {
                    let (q, r) = BigInt::divrem_by_limb(&mag, 1_000_000_000);
                    chunks.push(r);
                    mag = q;
                }
                if *sign == Sign::Negative {
                    write!(f, "-")?;
                }
                write!(f, "{}", chunks.last().expect("Large is nonzero"))?;
                for chunk in chunks.iter().rev().skip(1) {
                    write!(f, "{:09}", chunk)?;
                }
                Ok(())
            }
        }
    }
}

impl fmt::Debug for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigInt({})", self)
    }
}

/// Error returned when parsing a [`BigInt`] from a malformed string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseBigIntError;

impl fmt::Display for ParseBigIntError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid BigInt literal")
    }
}

impl std::error::Error for ParseBigIntError {}

impl FromStr for BigInt {
    type Err = ParseBigIntError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (neg, digits) = match s.strip_prefix('-') {
            Some(rest) => (true, rest),
            None => (false, s.strip_prefix('+').unwrap_or(s)),
        };
        if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
            return Err(ParseBigIntError);
        }
        // Accumulate the magnitude in 9-digit decimal chunks: each step is a
        // single-limb multiply-add rather than a full BigInt multiply.
        let mut limbs: Vec<u32> = Vec::new();
        let bytes = digits.as_bytes();
        let mut pos = 0;
        while pos < bytes.len() {
            let take = (bytes.len() - pos).min(9);
            let mut chunk: u32 = 0;
            for &b in &bytes[pos..pos + take] {
                chunk = chunk * 10 + (b - b'0') as u32;
            }
            let scale = 10u32.pow(take as u32);
            mul_add_limb(&mut limbs, scale, chunk);
            pos += take;
        }
        let sign = if neg { Sign::Negative } else { Sign::Positive };
        Ok(BigInt::from_limbs(sign, limbs))
    }
}

/// Computes `limbs = limbs * m + a` in place.
fn mul_add_limb(limbs: &mut Vec<u32>, m: u32, a: u32) {
    let mut carry = a as u64;
    for limb in limbs.iter_mut() {
        let cur = *limb as u64 * m as u64 + carry;
        *limb = cur as u32;
        carry = cur >> 32;
    }
    while carry != 0 {
        limbs.push(carry as u32);
        carry >>= 32;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bi(v: i128) -> BigInt {
        BigInt::from(v)
    }

    /// Asserts the canonical-form invariant for a value.
    fn assert_canonical(x: &BigInt) {
        match &x.repr {
            Repr::Small(_) => {}
            Repr::Large { sign, limbs } => {
                assert_ne!(*sign, Sign::Zero);
                assert_ne!(limbs.last(), Some(&0), "trailing zero limb");
                assert!(x.bit_len() >= 64, "Large magnitude must exceed i64::MAX");
                assert!(x.to_i64().is_none());
            }
        }
    }

    #[test]
    fn construction_and_zero() {
        assert!(bi(0).is_zero());
        assert_eq!(bi(0), BigInt::zero());
        assert!(bi(5).is_positive());
        assert!(bi(-5).is_negative());
        assert_eq!(bi(1), BigInt::one());
        assert!(BigInt::one().is_one());
        assert!(!bi(2).is_one());
    }

    #[test]
    fn canonical_form_at_the_small_large_boundary() {
        for v in [
            0i128,
            1,
            -1,
            i64::MAX as i128,
            i64::MAX as i128 + 1,
            i64::MIN as i128,
            i64::MIN as i128 - 1,
            u64::MAX as i128,
            -(u64::MAX as i128),
            i128::MAX,
            i128::MIN + 1,
        ] {
            let x = bi(v);
            assert_canonical(&x);
            assert_eq!(x.to_i128(), Some(v), "roundtrip {v}");
            // Values that fit i64 must be Small (so Eq/Hash are value-based).
            assert_eq!(
                x.to_i64().is_some(),
                i64::try_from(v).is_ok(),
                "repr of {v}"
            );
        }
    }

    #[test]
    fn arithmetic_stays_canonical_across_the_boundary() {
        let near = [
            bi(i64::MAX as i128),
            bi(i64::MAX as i128 - 1),
            bi(i64::MIN as i128),
            bi(i64::MIN as i128 + 1),
            bi(1),
            bi(-1),
            bi(0),
        ];
        for a in &near {
            for b in &near {
                for v in [a + b, a - b, a * b] {
                    assert_canonical(&v);
                }
                assert_eq!(a + b, bi(a.to_i128().unwrap() + b.to_i128().unwrap()));
            }
            assert_canonical(&-a);
        }
        // Subtraction pulling a Large value back into Small territory.
        let big = bi(i64::MAX as i128) + bi(1);
        assert_canonical(&big);
        let back = &big - &bi(1);
        assert_eq!(back, bi(i64::MAX as i128));
        assert!(back.to_i64().is_some());
    }

    #[test]
    fn add_sub_small() {
        assert_eq!(&bi(3) + &bi(4), bi(7));
        assert_eq!(&bi(3) - &bi(4), bi(-1));
        assert_eq!(&bi(-3) + &bi(-4), bi(-7));
        assert_eq!(&bi(-3) - &bi(-4), bi(1));
        assert_eq!(&bi(0) + &bi(0), bi(0));
        assert_eq!(&bi(10) - &bi(10), bi(0));
    }

    #[test]
    fn mul_small() {
        assert_eq!(&bi(6) * &bi(7), bi(42));
        assert_eq!(&bi(-6) * &bi(7), bi(-42));
        assert_eq!(&bi(-6) * &bi(-7), bi(42));
        assert_eq!(&bi(0) * &bi(123456789), bi(0));
    }

    #[test]
    fn carries_across_limbs() {
        let a = bi((1i128 << 32) - 1);
        assert_eq!(&a + &bi(1), bi(1i128 << 32));
        let big = bi(u32::MAX as i128);
        assert_eq!(&big * &big, bi((u32::MAX as i128) * (u32::MAX as i128)));
        let big64 = bi(u64::MAX as i128);
        let expect: BigInt = "340282366920938463426481119284349108225".parse().unwrap();
        assert_eq!(&big64 * &big64, expect);
    }

    #[test]
    fn div_rem_matches_i128() {
        let cases: &[(i128, i128)] = &[
            (7, 3),
            (-7, 3),
            (7, -3),
            (-7, -3),
            (0, 5),
            (1 << 40, 3),
            (123456789012345678, 987654321),
            (-123456789012345678, 987654321),
            (i64::MIN as i128, -1),
            (i128::MAX / 2, i64::MAX as i128),
            (i128::MIN + 1, 3),
        ];
        for &(a, b) in cases {
            let (q, r) = bi(a).div_rem(&bi(b));
            assert_eq!(q, bi(a / b), "quotient for {a}/{b}");
            assert_eq!(r, bi(a % b), "remainder for {a}%{b}");
        }
    }

    #[test]
    fn knuth_division_matches_binary_reference_on_multi_limb_values() {
        // Deterministic multi-limb stress cases, including add-back triggers
        // (dividend top limbs just below a multiple of the divisor).
        let mut vals: Vec<BigInt> = Vec::new();
        for e in [64u32, 65, 95, 96, 127, 160, 224] {
            let p = bi(2).pow(e);
            vals.push(p.clone());
            vals.push(&p - &bi(1));
            vals.push(&p + &bi(1));
            vals.push(&p * &bi(0x1234_5678));
        }
        for a in &vals {
            for b in &vals {
                let (q, r) = a.div_rem(b);
                let (qr, rr) = reference::binary_long_divrem(a, b);
                assert_eq!(q, qr, "quotient {a}/{b}");
                assert_eq!(r, rr, "remainder {a}%{b}");
                assert_eq!(&(&q * b) + &r, a.clone(), "reconstruction {a}/{b}");
            }
        }
    }

    #[test]
    fn karatsuba_matches_schoolbook_above_threshold() {
        // 40-limb operands force at least one Karatsuba split.
        let a = (&bi(10).pow(350) - &bi(7)) * &bi(3);
        let b = &bi(10).pow(340) + &bi(987654321);
        assert!(a.bit_len() > KARATSUBA_THRESHOLD * 32);
        assert_eq!(&a * &b, reference::schoolbook_mul(&a, &b));
        assert_eq!(&a * &a, reference::schoolbook_mul(&a, &a));
        let neg = -&a;
        assert_eq!(&neg * &b, reference::schoolbook_mul(&neg, &b));
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_panics() {
        let _ = bi(1).div_rem(&bi(0));
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_panics_large() {
        let _ = bi(i128::MAX).div_rem(&bi(0));
    }

    #[test]
    fn gcd_matches_reference() {
        for a in -30i128..30 {
            for b in -30i128..30 {
                let expect = crate::gcd_i128(a, b);
                assert_eq!(bi(a).gcd(&bi(b)), bi(expect), "gcd({a},{b})");
            }
        }
        // Mixed small/large and large/large.
        let p = bi(2).pow(90) * bi(3).pow(5);
        let q = bi(2).pow(70) * bi(5).pow(4);
        assert_eq!(p.gcd(&q), bi(2).pow(70));
        assert_eq!(p.gcd(&bi(6)), bi(6));
        assert_eq!(
            bi(i64::MIN as i128).gcd(&bi(i64::MIN as i128)),
            bi(1i128 << 63)
        );
    }

    #[test]
    fn pow_small() {
        assert_eq!(bi(2).pow(10), bi(1024));
        assert_eq!(bi(3).pow(0), bi(1));
        assert_eq!(bi(0).pow(0), bi(1));
        assert_eq!(bi(-2).pow(3), bi(-8));
        assert_eq!(bi(10).pow(20), "100000000000000000000".parse().unwrap());
    }

    #[test]
    fn ordering() {
        assert!(bi(-5) < bi(-1));
        assert!(bi(-1) < bi(0));
        assert!(bi(0) < bi(1));
        assert!(bi(1) < bi(5));
        assert!(bi(1i128 << 40) > bi(1i128 << 20));
        assert!(bi(-(1i128 << 40)) < bi(-(1i128 << 20)));
        // Across the Small/Large boundary.
        assert!(bi(i64::MAX as i128) < bi(i64::MAX as i128) + bi(1));
        assert!(bi(i64::MIN as i128) > bi(i64::MIN as i128) - bi(1));
        assert!(bi(i128::MIN + 1) < bi(i64::MIN as i128));
    }

    #[test]
    fn display_and_parse_roundtrip() {
        for v in [
            0i128,
            1,
            -1,
            42,
            -42,
            1_000_000_007,
            i64::MAX as i128,
            i64::MIN as i128,
        ] {
            let s = bi(v).to_string();
            assert_eq!(s, v.to_string());
            assert_eq!(s.parse::<BigInt>().unwrap(), bi(v));
        }
        let huge = bi(10).pow(40);
        let s = huge.to_string();
        assert_eq!(s.len(), 41);
        assert_eq!(s.parse::<BigInt>().unwrap(), huge);
        for v in [i128::MAX, i128::MIN + 1, i64::MAX as i128 + 1] {
            assert_eq!(bi(v).to_string(), v.to_string());
            assert_eq!(v.to_string().parse::<BigInt>().unwrap(), bi(v));
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("".parse::<BigInt>().is_err());
        assert!("-".parse::<BigInt>().is_err());
        assert!("12a".parse::<BigInt>().is_err());
        assert!("1.5".parse::<BigInt>().is_err());
    }

    #[test]
    fn conversions() {
        assert_eq!(bi(12345).to_i128(), Some(12345));
        assert_eq!(bi(-12345).to_i128(), Some(-12345));
        assert_eq!(bi(12345).to_u64(), Some(12345));
        assert_eq!(bi(-1).to_u64(), None);
        assert_eq!(bi(u64::MAX as i128).to_u64(), Some(u64::MAX));
        assert_eq!(bi(u64::MAX as i128 + 1).to_u64(), None);
        assert_eq!(bi(10).pow(50).to_i128(), None);
        assert!((bi(1i128 << 80).to_f64() - (1i128 << 80) as f64).abs() < 1e10);
        assert_eq!(bi(7).to_i64(), Some(7));
        assert_eq!(bi(i64::MAX as i128 + 1).to_i64(), None);
    }

    #[test]
    fn negation_at_i64_min() {
        let x = bi(i64::MIN as i128);
        let n = -&x;
        assert_canonical(&n);
        assert_eq!(n.to_i128(), Some(-(i64::MIN as i128)));
        assert_eq!(-n, x);
    }

    #[test]
    fn bit_len() {
        assert_eq!(bi(0).bit_len(), 0);
        assert_eq!(bi(1).bit_len(), 1);
        assert_eq!(bi(255).bit_len(), 8);
        assert_eq!(bi(256).bit_len(), 9);
        assert_eq!(bi(1i128 << 64).bit_len(), 65);
        assert_eq!(bi(i64::MIN as i128).bit_len(), 64);
    }

    #[test]
    fn assign_ops() {
        let mut x = bi(10);
        x += &bi(5);
        assert_eq!(x, bi(15));
        x -= &bi(20);
        assert_eq!(x, bi(-5));
        x *= &bi(-3);
        assert_eq!(x, bi(15));
        let mut y = bi(i64::MAX as i128);
        y += &bi(1);
        assert_canonical(&y);
        assert_eq!(y.to_i128(), Some(i64::MAX as i128 + 1));
    }
}
