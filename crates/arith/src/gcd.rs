//! Greatest-common-divisor helpers for machine integers.
//!
//! These are used both directly (by the fast paths of [`crate::Rational`]) and
//! as reference implementations in the property tests for [`crate::BigInt`].

/// Binary GCD for unsigned 64-bit integers. `gcd(0, 0) == 0`.
///
/// This is the workhorse of the `Rational` small fast path: one call per
/// normalization, no allocation, no division.
pub fn gcd_u64(mut a: u64, mut b: u64) -> u64 {
    if a == 0 {
        return b;
    }
    if b == 0 {
        return a;
    }
    let shift = (a | b).trailing_zeros();
    a >>= a.trailing_zeros();
    loop {
        b >>= b.trailing_zeros();
        if a > b {
            core::mem::swap(&mut a, &mut b);
        }
        b -= a;
        if b == 0 {
            return a << shift;
        }
    }
}

/// Binary GCD for unsigned 128-bit integers. `gcd(0, 0) == 0`.
pub fn gcd_u128(mut a: u128, mut b: u128) -> u128 {
    if a == 0 {
        return b;
    }
    if b == 0 {
        return a;
    }
    let shift = (a | b).trailing_zeros();
    a >>= a.trailing_zeros();
    loop {
        b >>= b.trailing_zeros();
        if a > b {
            core::mem::swap(&mut a, &mut b);
        }
        b -= a;
        if b == 0 {
            return a << shift;
        }
    }
}

/// GCD for signed 128-bit integers, returned as a non-negative value.
///
/// # Panics
/// Panics if both inputs are `i128::MIN` (whose absolute value overflows);
/// this cannot occur for the loop-bound magnitudes used in this workspace.
pub fn gcd_i128(a: i128, b: i128) -> i128 {
    let ua = a.unsigned_abs();
    let ub = b.unsigned_abs();
    let g = gcd_u128(ua, ub);
    i128::try_from(g).expect("gcd magnitude fits in i128")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gcd_basic() {
        assert_eq!(gcd_u128(0, 0), 0);
        assert_eq!(gcd_u128(0, 7), 7);
        assert_eq!(gcd_u128(7, 0), 7);
        assert_eq!(gcd_u128(12, 18), 6);
        assert_eq!(gcd_u128(17, 5), 1);
        assert_eq!(gcd_u128(2u128.pow(40), 2u128.pow(20) * 3), 2u128.pow(20));
    }

    #[test]
    fn gcd_signed() {
        assert_eq!(gcd_i128(-12, 18), 6);
        assert_eq!(gcd_i128(12, -18), 6);
        assert_eq!(gcd_i128(-12, -18), 6);
        assert_eq!(gcd_i128(0, -5), 5);
    }

    #[test]
    fn gcd_divides_both() {
        for a in 0u128..50 {
            for b in 0u128..50 {
                let g = gcd_u128(a, b);
                if g != 0 {
                    assert_eq!(a % g, 0);
                    assert_eq!(b % g, 0);
                } else {
                    assert_eq!((a, b), (0, 0));
                }
            }
        }
    }
}
