//! Property tests: BigInt/Rational arithmetic must agree with i128 semantics
//! on inputs that fit, and must satisfy the algebraic laws used by the exact
//! simplex solver (field axioms for Rational, ring axioms for BigInt).

use projtile_arith::{ratio, BigInt, Rational};
use proptest::prelude::*;

fn bi(v: i128) -> BigInt {
    BigInt::from(v)
}

proptest! {
    #[test]
    fn add_matches_i128(a in -1_000_000_000_000i128..1_000_000_000_000, b in -1_000_000_000_000i128..1_000_000_000_000) {
        prop_assert_eq!(&bi(a) + &bi(b), bi(a + b));
    }

    #[test]
    fn sub_matches_i128(a in -1_000_000_000_000i128..1_000_000_000_000, b in -1_000_000_000_000i128..1_000_000_000_000) {
        prop_assert_eq!(&bi(a) - &bi(b), bi(a - b));
    }

    #[test]
    fn mul_matches_i128(a in -1_000_000_000i128..1_000_000_000, b in -1_000_000_000i128..1_000_000_000) {
        prop_assert_eq!(&bi(a) * &bi(b), bi(a * b));
    }

    #[test]
    fn div_rem_matches_i128(a in -1_000_000_000_000i128..1_000_000_000_000, b in -1_000_000i128..1_000_000) {
        prop_assume!(b != 0);
        let (q, r) = bi(a).div_rem(&bi(b));
        prop_assert_eq!(q, bi(a / b));
        prop_assert_eq!(r, bi(a % b));
    }

    #[test]
    fn div_rem_reconstructs(a in any::<i64>(), b in any::<i64>()) {
        prop_assume!(b != 0);
        let (q, r) = bi(a as i128).div_rem(&bi(b as i128));
        prop_assert_eq!(&(&q * &bi(b as i128)) + &r, bi(a as i128));
    }

    #[test]
    fn ordering_matches_i128(a in any::<i64>(), b in any::<i64>()) {
        prop_assert_eq!(bi(a as i128).cmp(&bi(b as i128)), a.cmp(&b));
    }

    #[test]
    fn display_parse_roundtrip(a in any::<i128>()) {
        let x = bi(a);
        let s = x.to_string();
        prop_assert_eq!(s.parse::<BigInt>().unwrap(), x);
        prop_assert_eq!(s, a.to_string());
    }

    #[test]
    fn gcd_divides_and_is_max(a in -100_000i64..100_000, b in -100_000i64..100_000) {
        let g = bi(a as i128).gcd(&bi(b as i128));
        if a == 0 && b == 0 {
            prop_assert!(g.is_zero());
        } else {
            prop_assert!(g.is_positive());
            prop_assert!((&bi(a as i128) % &g).is_zero());
            prop_assert!((&bi(b as i128) % &g).is_zero());
        }
    }

    #[test]
    fn rational_field_laws(
        an in -1000i64..1000, ad in 1i64..1000,
        bn in -1000i64..1000, bd in 1i64..1000,
        cn in -1000i64..1000, cd in 1i64..1000,
    ) {
        let a = ratio(an, ad);
        let b = ratio(bn, bd);
        let c = ratio(cn, cd);
        // commutativity and associativity
        prop_assert_eq!(&a + &b, &b + &a);
        prop_assert_eq!(&a * &b, &b * &a);
        prop_assert_eq!(&(&a + &b) + &c, &a + &(&b + &c));
        prop_assert_eq!(&(&a * &b) * &c, &a * &(&b * &c));
        // distributivity
        prop_assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
        // additive / multiplicative inverses
        prop_assert_eq!(&a - &a, Rational::zero());
        if !a.is_zero() {
            prop_assert_eq!(&a * &a.recip(), Rational::one());
            prop_assert_eq!(&(&b / &a) * &a, b.clone());
        }
    }

    #[test]
    fn rational_ordering_consistent_with_f64(
        an in -1000i64..1000, ad in 1i64..1000,
        bn in -1000i64..1000, bd in 1i64..1000,
    ) {
        let a = ratio(an, ad);
        let b = ratio(bn, bd);
        let fa = an as f64 / ad as f64;
        let fb = bn as f64 / bd as f64;
        if (fa - fb).abs() > 1e-9 {
            prop_assert_eq!(a < b, fa < fb);
        }
    }

    #[test]
    fn rational_floor_ceil_bracket(an in -10_000i64..10_000, ad in 1i64..100) {
        let a = ratio(an, ad);
        let floor = Rational::from_integer(a.floor());
        let ceil = Rational::from_integer(a.ceil());
        prop_assert!(floor <= a);
        prop_assert!(a <= ceil);
        prop_assert!(&ceil - &floor <= Rational::one());
        if a.is_integer() {
            prop_assert_eq!(floor, ceil);
        }
    }

    #[test]
    fn bigint_pow_matches_u128(base in 0u32..50, exp in 0u32..8) {
        let expect = (base as u128).pow(exp);
        prop_assert_eq!(BigInt::from(base).pow(exp), BigInt::from(expect));
    }
}
