//! Property tests: BigInt/Rational arithmetic must agree with i128 semantics
//! on inputs that fit, and must satisfy the algebraic laws used by the exact
//! simplex solver (field axioms for Rational, ring axioms for BigInt).

use projtile_arith::{ratio, BigInt, Rational};
use proptest::prelude::*;
use proptest::TestCaseError;

fn bi(v: i128) -> BigInt {
    BigInt::from(v)
}

proptest! {
    #[test]
    fn add_matches_i128(a in -1_000_000_000_000i128..1_000_000_000_000, b in -1_000_000_000_000i128..1_000_000_000_000) {
        prop_assert_eq!(&bi(a) + &bi(b), bi(a + b));
    }

    #[test]
    fn sub_matches_i128(a in -1_000_000_000_000i128..1_000_000_000_000, b in -1_000_000_000_000i128..1_000_000_000_000) {
        prop_assert_eq!(&bi(a) - &bi(b), bi(a - b));
    }

    #[test]
    fn mul_matches_i128(a in -1_000_000_000i128..1_000_000_000, b in -1_000_000_000i128..1_000_000_000) {
        prop_assert_eq!(&bi(a) * &bi(b), bi(a * b));
    }

    #[test]
    fn div_rem_matches_i128(a in -1_000_000_000_000i128..1_000_000_000_000, b in -1_000_000i128..1_000_000) {
        prop_assume!(b != 0);
        let (q, r) = bi(a).div_rem(&bi(b));
        prop_assert_eq!(q, bi(a / b));
        prop_assert_eq!(r, bi(a % b));
    }

    #[test]
    fn div_rem_reconstructs(a in any::<i64>(), b in any::<i64>()) {
        prop_assume!(b != 0);
        let (q, r) = bi(a as i128).div_rem(&bi(b as i128));
        prop_assert_eq!(&(&q * &bi(b as i128)) + &r, bi(a as i128));
    }

    #[test]
    fn ordering_matches_i128(a in any::<i64>(), b in any::<i64>()) {
        prop_assert_eq!(bi(a as i128).cmp(&bi(b as i128)), a.cmp(&b));
    }

    #[test]
    fn display_parse_roundtrip(a in any::<i128>()) {
        let x = bi(a);
        let s = x.to_string();
        prop_assert_eq!(s.parse::<BigInt>().unwrap(), x);
        prop_assert_eq!(s, a.to_string());
    }

    #[test]
    fn gcd_divides_and_is_max(a in -100_000i64..100_000, b in -100_000i64..100_000) {
        let g = bi(a as i128).gcd(&bi(b as i128));
        if a == 0 && b == 0 {
            prop_assert!(g.is_zero());
        } else {
            prop_assert!(g.is_positive());
            prop_assert!((&bi(a as i128) % &g).is_zero());
            prop_assert!((&bi(b as i128) % &g).is_zero());
        }
    }

    #[test]
    fn rational_field_laws(
        an in -1000i64..1000, ad in 1i64..1000,
        bn in -1000i64..1000, bd in 1i64..1000,
        cn in -1000i64..1000, cd in 1i64..1000,
    ) {
        let a = ratio(an, ad);
        let b = ratio(bn, bd);
        let c = ratio(cn, cd);
        // commutativity and associativity
        prop_assert_eq!(&a + &b, &b + &a);
        prop_assert_eq!(&a * &b, &b * &a);
        prop_assert_eq!(&(&a + &b) + &c, &a + &(&b + &c));
        prop_assert_eq!(&(&a * &b) * &c, &a * &(&b * &c));
        // distributivity
        prop_assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
        // additive / multiplicative inverses
        prop_assert_eq!(&a - &a, Rational::zero());
        if !a.is_zero() {
            prop_assert_eq!(&a * &a.recip(), Rational::one());
            prop_assert_eq!(&(&b / &a) * &a, b.clone());
        }
    }

    #[test]
    fn rational_ordering_consistent_with_f64(
        an in -1000i64..1000, ad in 1i64..1000,
        bn in -1000i64..1000, bd in 1i64..1000,
    ) {
        let a = ratio(an, ad);
        let b = ratio(bn, bd);
        let fa = an as f64 / ad as f64;
        let fb = bn as f64 / bd as f64;
        if (fa - fb).abs() > 1e-9 {
            prop_assert_eq!(a < b, fa < fb);
        }
    }

    #[test]
    fn rational_floor_ceil_bracket(an in -10_000i64..10_000, ad in 1i64..100) {
        let a = ratio(an, ad);
        let floor = Rational::from_integer(a.floor());
        let ceil = Rational::from_integer(a.ceil());
        prop_assert!(floor <= a);
        prop_assert!(a <= ceil);
        prop_assert!(&ceil - &floor <= Rational::one());
        if a.is_integer() {
            prop_assert_eq!(floor, ceil);
        }
    }

    #[test]
    fn bigint_pow_matches_u128(base in 0u32..50, exp in 0u32..8) {
        let expect = (base as u128).pow(exp);
        prop_assert_eq!(BigInt::from(base).pow(exp), BigInt::from(expect));
    }
}

// ---------------------------------------------------------------------------
// Differential tests: the fast-path arithmetic (inline small values, Knuth-D
// division, Karatsuba multiplication, i128 Rational cross-multiplication)
// must agree *exactly* with the retained reference implementations
// (`projtile_arith::reference`: schoolbook multiplication and bit-by-bit
// binary long division — the seed's algorithms) and with independent i128
// arithmetic.
// ---------------------------------------------------------------------------

/// Builds a BigInt spanning `limbs.len()` 32-bit limbs (plus sign), so the
/// multi-limb code paths are exercised, not just the inline fast path.
fn from_limbs_and_sign(limbs: &[u32], negative: bool) -> BigInt {
    let shift = BigInt::from(1u128 << 32);
    let mut acc = BigInt::zero();
    for &l in limbs.iter().rev() {
        acc = &(&acc * &shift) + &BigInt::from(l);
    }
    if negative {
        acc = -acc;
    }
    acc
}

/// Reference u128 gcd (Euclid) used to reduce fractions independently of the
/// library's binary-gcd fast path.
fn euclid_gcd_u128(mut a: u128, mut b: u128) -> u128 {
    while b != 0 {
        let r = a % b;
        a = b;
        b = r;
    }
    a
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn multi_limb_mul_matches_schoolbook_reference(
        a_limbs in proptest::collection::vec(any::<u32>(), 1..12),
        b_limbs in proptest::collection::vec(any::<u32>(), 1..12),
        a_neg in proptest::bool::ANY,
        b_neg in proptest::bool::ANY,
    ) {
        let a = from_limbs_and_sign(&a_limbs, a_neg);
        let b = from_limbs_and_sign(&b_limbs, b_neg);
        prop_assert_eq!(&a * &b, projtile_arith::reference::schoolbook_mul(&a, &b));
    }

    #[test]
    fn karatsuba_sized_mul_matches_schoolbook_reference(
        a_limbs in proptest::collection::vec(any::<u32>(), 33..80),
        b_limbs in proptest::collection::vec(any::<u32>(), 33..80),
        a_neg in proptest::bool::ANY,
    ) {
        // Operand sizes above the Karatsuba threshold (32 limbs).
        let a = from_limbs_and_sign(&a_limbs, a_neg);
        let b = from_limbs_and_sign(&b_limbs, false);
        prop_assert_eq!(&a * &b, projtile_arith::reference::schoolbook_mul(&a, &b));
    }

    #[test]
    fn knuth_d_divrem_matches_binary_reference(
        a_limbs in proptest::collection::vec(any::<u32>(), 1..14),
        b_limbs in proptest::collection::vec(any::<u32>(), 2..7),
        a_neg in proptest::bool::ANY,
        b_neg in proptest::bool::ANY,
    ) {
        let a = from_limbs_and_sign(&a_limbs, a_neg);
        let b = from_limbs_and_sign(&b_limbs, b_neg);
        prop_assume!(!b.is_zero());
        let (q, r) = a.div_rem(&b);
        let (qr, rr) = projtile_arith::reference::binary_long_divrem(&a, &b);
        prop_assert_eq!(&q, &qr);
        prop_assert_eq!(&r, &rr);
        // And the Euclidean identity holds exactly.
        prop_assert_eq!(&(&q * &b) + &r, a);
    }

    #[test]
    fn single_limb_divisor_matches_binary_reference(
        a_limbs in proptest::collection::vec(any::<u32>(), 1..10),
        d in 1u32..u32::MAX,
        a_neg in proptest::bool::ANY,
    ) {
        let a = from_limbs_and_sign(&a_limbs, a_neg);
        let b = BigInt::from(d);
        let (q, r) = a.div_rem(&b);
        let (qr, rr) = projtile_arith::reference::binary_long_divrem(&a, &b);
        prop_assert_eq!(q, qr);
        prop_assert_eq!(r, rr);
    }

    #[test]
    fn rational_ops_match_i128_cross_multiplication(
        an in -100_000i64..100_000, ad in 1i64..100_000,
        bn in -100_000i64..100_000, bd in 1i64..100_000,
    ) {
        let a = ratio(an, ad);
        let b = ratio(bn, bd);
        // Expected values computed with plain i128 arithmetic and an
        // independent Euclid gcd, then compared component-wise.
        let check = |r: &Rational, mut num: i128, mut den: i128| -> Result<(), TestCaseError> {
            if den < 0 {
                num = -num;
                den = -den;
            }
            let g = euclid_gcd_u128(num.unsigned_abs(), den.unsigned_abs());
            if g > 1 {
                num /= g as i128;
                den /= g as i128;
            }
            if num == 0 {
                den = 1;
            }
            prop_assert_eq!(r.numer().to_i128(), Some(num));
            prop_assert_eq!(r.denom().to_i128(), Some(den));
            Ok(())
        };
        check(&(&a + &b), an as i128 * bd as i128 + bn as i128 * ad as i128,
              ad as i128 * bd as i128)?;
        check(&(&a - &b), an as i128 * bd as i128 - bn as i128 * ad as i128,
              ad as i128 * bd as i128)?;
        check(&(&a * &b), an as i128 * bn as i128, ad as i128 * bd as i128)?;
        if bn != 0 {
            check(&(&a / &b), an as i128 * bd as i128, ad as i128 * bn as i128)?;
        }
        // Ordering matches i128 cross multiplication.
        let lhs = an as i128 * bd as i128;
        let rhs = bn as i128 * ad as i128;
        prop_assert_eq!(a.cmp(&b), lhs.cmp(&rhs));
    }

    #[test]
    fn fused_ops_match_separate_ops(
        an in -1000i64..1000, ad in 1i64..1000,
        fn_ in -1000i64..1000, fd in 1i64..1000,
        pn in -1000i64..1000, pd in 1i64..1000,
    ) {
        let a = ratio(an, ad);
        let f = ratio(fn_, fd);
        let p = ratio(pn, pd);
        let mut fused = a.clone();
        fused.sub_mul_assign(&f, &p);
        prop_assert_eq!(fused, &a - &(&f * &p));
        let mut fused = a.clone();
        fused.add_mul_assign(&f, &p);
        prop_assert_eq!(fused, &a + &(&f * &p));
    }

    #[test]
    fn cmp_div_matches_explicit_division(
        an in -1000i64..1000, ad in 1i64..1000,
        bn in 1i64..1000, bd in 1i64..1000,
        cn in -1000i64..1000, cd in 1i64..1000,
        dn in 1i64..1000, dd in 1i64..1000,
    ) {
        let a = ratio(an, ad);
        let b = ratio(bn, bd);
        let c = ratio(cn, cd);
        let d = ratio(dn, dd);
        prop_assert_eq!(Rational::cmp_div(&a, &b, &c, &d), (&a / &b).cmp(&(&c / &d)));
    }

    #[test]
    fn rational_ops_agree_with_reference_beyond_i64(
        an in any::<i64>(), ad in 1i64..i64::MAX,
        bn in any::<i64>(), bd in 1i64..i64::MAX,
    ) {
        // Near the top of the i64 range the fast path overflows its i128
        // intermediates and must fall back to BigInt arithmetic; the result
        // must be identical either way. Compare against values computed from
        // scratch with BigInt-only building blocks.
        let a = ratio(an, ad);
        let b = ratio(bn, bd);
        let sum = &a + &b;
        let expect_num = &(&BigInt::from(an) * &BigInt::from(bd))
            + &(&BigInt::from(bn) * &BigInt::from(ad));
        let expect_den = &BigInt::from(ad) * &BigInt::from(bd);
        let g = expect_num.gcd(&expect_den);
        if !g.is_zero() {
            prop_assert_eq!(sum.numer(), &(&expect_num / &g));
            prop_assert_eq!(sum.denom(), &(&expect_den / &g));
        } else {
            prop_assert!(sum.is_zero());
        }
    }
}
