//! Exact linear-programming substrate for `projtile`.
//!
//! Every result in Dinh & Demmel (SPAA 2020) is phrased in terms of small
//! linear programs:
//!
//! * the HBL LP (3.1)/(3.2) whose optimum `k_HBL` gives the large-bound
//!   communication lower bound `∏L_i / M^{k_HBL−1}`;
//! * its row-deleted variants, which give the Theorem-2 arbitrary-bound
//!   exponents; and
//! * the tiling LP (5.1), whose optimal solution *is* the optimal rectangular
//!   tile (in log-space) and whose dual is exactly the Theorem-2 bound
//!   (Theorem 3).
//!
//! This crate provides a dense, two-phase simplex solver over exact rationals
//! ([`projtile_arith::Rational`]), explicit dual-program construction (so that
//! strong duality can be *checked*, not assumed), a one-dimensional
//! parametric right-hand-side analysis ([`parametric`]), and a full
//! multiparametric analysis over a box of right-hand-side parameters
//! ([`mplp`]) — both used for the piecewise-linear closed-form exponents of
//! Section 7 of the paper.
//!
//! ```
//! use projtile_arith::{int, ratio};
//! use projtile_lp::{solve, Constraint, LinearProgram, Relation};
//!
//! // The matmul HBL LP (3.2): min s1+s2+s3 st pairwise sums ≥ 1 → 3/2.
//! let mut lp = LinearProgram::minimize(vec![int(1), int(1), int(1)]);
//! for row in [[1, 1, 0], [0, 1, 1], [1, 0, 1]] {
//!     lp.add_constraint(Constraint::new(
//!         row.iter().map(|&v| int(v)).collect(),
//!         Relation::Ge,
//!         int(1),
//!     ));
//! }
//! let sol = solve(&lp).unwrap();
//! assert_eq!(sol.objective_value, ratio(3, 2));
//! ```
//!
//! The solver uses Bland's rule, so it terminates on every input, including
//! the degenerate LPs that appear when several loop bounds are exactly at a
//! crossover point (e.g. `L_3 = √M` in the matrix-multiplication example).
//!
//! # Warm-started and batched solving
//!
//! Both the `2^d` Theorem-2 subset enumeration and the §7 parametric sweeps
//! solve *families* of LPs that share one constraint matrix and differ only
//! in their right-hand sides (the subset enumeration after rewriting row
//! deletion as rhs relaxation — see `projtile_core::hbl`). The
//! [`warm::SolverContext`] exploits this: it retains the final simplex
//! tableau of the previous solve and re-enters the **dual simplex** from the
//! retained basis when only the rhs changed. The protocol and its invariants:
//!
//! 1. **When a retained basis is reusable.** The next program must have the
//!    same objective sense, the same cost vector, and constraints with the
//!    same coefficients and relations, in the same order; only the rhs may
//!    differ. The context checks this itself and cold-restarts otherwise, so
//!    reuse is a performance property, never a correctness obligation of the
//!    caller. A retained basis is also discarded when the previous solve
//!    dropped redundant rows (the constraint-to-row mapping is lost) or
//!    failed; [`warm::SolverContext::reset`] drops it explicitly.
//! 2. **Why re-entry is sound.** Reduced costs do not depend on the rhs, so
//!    the retained basis stays dual feasible; installing the new rhs only
//!    perturbs the basic values (`B⁻¹b`), and the dual simplex (with Bland's
//!    anti-cycling rule) restores primal feasibility in few pivots when few
//!    rhs entries changed. A negative-rhs row with no admissible pivot is an
//!    exact infeasibility certificate.
//! 3. **Exactness.** [`warm::SolverContext::solve`] is bitwise-identical to
//!    the cold [`solve_canonical`]: both finish by moving to the
//!    lexicographically smallest optimal vertex, a canonical point that
//!    depends only on the program and not on the pivot path, so degenerate
//!    programs with whole optimal faces cannot make a warm and a cold solve
//!    disagree. [`warm::SolverContext::solve_value`] skips the
//!    canonicalization for value-only sweeps: optimal values are unique, so
//!    they are exactly those of [`solve`] and [`solve_canonical`] alike,
//!    while the reported point may be any optimal vertex.
//! 4. **Batching.** Drive sweeps through `projtile_par::par_map_with` with
//!    one context per worker: warm starts then compound along each worker's
//!    contiguous chunk (order the family so neighbours differ in few rhs
//!    entries, e.g. Gray-code order for subset sweeps).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dual;
mod error;
pub mod mplp;
pub mod parametric;
mod problem;
mod simplex;
pub mod warm;

pub use dual::dual_program;
pub use error::LpError;
pub use mplp::{AffinePiece, CriticalRegion, HalfSpace, ParamBox, ValueSurface};
pub use problem::{Constraint, LinearProgram, Objective, Relation, Solution};
pub use simplex::{solve, solve_canonical, verify_optimal};
pub use warm::{ContextPool, ContextStats, PooledContext, SolverContext};

#[cfg(test)]
mod tests {
    use super::*;
    use projtile_arith::{int, ratio};

    #[test]
    fn end_to_end_matmul_hbl() {
        // minimize s1+s2+s3 st pairwise sums >= 1 -> optimum 3/2.
        let mut lp = LinearProgram::minimize(vec![int(1), int(1), int(1)]);
        lp.add_constraint(Constraint::new(
            vec![int(1), int(1), int(0)],
            Relation::Ge,
            int(1),
        ));
        lp.add_constraint(Constraint::new(
            vec![int(0), int(1), int(1)],
            Relation::Ge,
            int(1),
        ));
        lp.add_constraint(Constraint::new(
            vec![int(1), int(0), int(1)],
            Relation::Ge,
            int(1),
        ));
        let sol = solve(&lp).unwrap();
        assert_eq!(sol.objective_value, ratio(3, 2));
    }
}
