//! Exact linear-programming substrate for `projtile`.
//!
//! Every result in Dinh & Demmel (SPAA 2020) is phrased in terms of small
//! linear programs:
//!
//! * the HBL LP (3.1)/(3.2) whose optimum `k_HBL` gives the large-bound
//!   communication lower bound `∏L_i / M^{k_HBL−1}`;
//! * its row-deleted variants, which give the Theorem-2 arbitrary-bound
//!   exponents; and
//! * the tiling LP (5.1), whose optimal solution *is* the optimal rectangular
//!   tile (in log-space) and whose dual is exactly the Theorem-2 bound
//!   (Theorem 3).
//!
//! This crate provides a dense, two-phase simplex solver over exact rationals
//! ([`projtile_arith::Rational`]), explicit dual-program construction (so that
//! strong duality can be *checked*, not assumed), and a one-dimensional
//! parametric right-hand-side analysis used for the piecewise-linear
//! closed-form exponents of Section 7 of the paper.
//!
//! The solver uses Bland's rule, so it terminates on every input, including
//! the degenerate LPs that appear when several loop bounds are exactly at a
//! crossover point (e.g. `L_3 = √M` in the matrix-multiplication example).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dual;
mod error;
pub mod parametric;
mod problem;
mod simplex;

pub use dual::dual_program;
pub use error::LpError;
pub use problem::{Constraint, LinearProgram, Objective, Relation, Solution};
pub use simplex::{solve, verify_optimal};

#[cfg(test)]
mod tests {
    use super::*;
    use projtile_arith::{int, ratio};

    #[test]
    fn end_to_end_matmul_hbl() {
        // minimize s1+s2+s3 st pairwise sums >= 1 -> optimum 3/2.
        let mut lp = LinearProgram::minimize(vec![int(1), int(1), int(1)]);
        lp.add_constraint(Constraint::new(
            vec![int(1), int(1), int(0)],
            Relation::Ge,
            int(1),
        ));
        lp.add_constraint(Constraint::new(
            vec![int(0), int(1), int(1)],
            Relation::Ge,
            int(1),
        ));
        lp.add_constraint(Constraint::new(
            vec![int(1), int(0), int(1)],
            Relation::Ge,
            int(1),
        ));
        let sol = solve(&lp).unwrap();
        assert_eq!(sol.objective_value, ratio(3, 2));
    }
}
