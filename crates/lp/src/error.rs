//! Error types for the LP solver.

use core::fmt;

/// Reasons an LP solve can fail to return an optimal solution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LpError {
    /// The feasible region is empty.
    Infeasible,
    /// The objective is unbounded over the feasible region.
    Unbounded,
    /// The problem is structurally malformed (e.g. a constraint whose
    /// coefficient vector length does not match the number of variables).
    Malformed(String),
}

impl fmt::Display for LpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LpError::Infeasible => write!(f, "linear program is infeasible"),
            LpError::Unbounded => write!(f, "linear program is unbounded"),
            LpError::Malformed(msg) => write!(f, "malformed linear program: {msg}"),
        }
    }
}

impl std::error::Error for LpError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(LpError::Infeasible.to_string().contains("infeasible"));
        assert!(LpError::Unbounded.to_string().contains("unbounded"));
        assert!(LpError::Malformed("bad".into()).to_string().contains("bad"));
    }
}
