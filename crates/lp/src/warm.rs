//! Warm-started LP solving for families of closely related programs.
//!
//! The paper's pipeline never solves one LP in isolation: the Theorem-2
//! subset enumeration solves `2^d` HBL programs that share one constraint
//! matrix and differ only in which right-hand sides are relaxed to zero, and
//! the §7 parametric sweeps probe one tiling LP along a ray of right-hand
//! sides. [`SolverContext`] exploits that structure: it retains the final
//! simplex tableau of the previous solve and, when the next program differs
//! **only in its right-hand side**, re-enters the dual simplex from the
//! retained basis (which stays dual feasible — reduced costs do not depend on
//! the rhs) instead of running two-phase simplex from scratch. A program
//! whose matrix, objective, or relations differ triggers a transparent cold
//! restart, so the context is always safe to use as a drop-in replacement
//! for [`crate::solve`].
//!
//! # Exactness contract
//!
//! * [`SolverContext::solve`] returns **bitwise-identical** results to the
//!   cold [`crate::solve_canonical`], including errors. Both paths finish by moving to
//!   the lexicographically smallest optimal vertex — a canonical point that
//!   depends only on the program, not on the pivot path (see
//!   `simplex::Tableau::canonicalize_vertex`) — so degenerate programs with
//!   whole optimal faces cannot make the two paths disagree. The
//!   differential property tests in `tests/proptest_lp.rs` assert this
//!   equality across randomized program families.
//! * [`SolverContext::solve_value`] skips the canonicalization: its reported
//!   *objective value* is still exactly the cold one (the optimal value of
//!   an LP is unique, and all arithmetic is exact), but the reported point
//!   may be any vertex of the optimal face. Use it for value sweeps (the
//!   parametric analysis) where only the optimum matters.
//!
//! See the crate-level docs for the full warm-start protocol and the
//! conditions under which a retained basis is reusable.

use projtile_arith::Rational;

use crate::problem::{LinearProgram, Solution};
use crate::simplex::Tableau;
use crate::LpError;

/// Counters describing how a [`SolverContext`] resolved its queries; useful
/// for asserting that warm starts actually happen and for perf reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ContextStats {
    /// Solves that rebuilt the tableau from scratch (first use, structure
    /// change, or a previous solve that left no reusable tableau).
    pub cold_solves: u64,
    /// Solves answered by re-entering the retained tableau.
    pub warm_solves: u64,
}

/// One tableau row of an optimal basis, as exposed by
/// [`SolverContext::solve_with_sensitivity`]: the current basic value and the
/// `B⁻¹` row that maps right-hand-side deltas (in the original constraints'
/// orientation) to it, `x(b) = value + Σ_k binv[k]·(b_k − b_k^current)`.
///
/// At an optimal tableau every `value` is non-negative; the basis stays
/// optimal exactly as long as all these affine functions of the rhs remain
/// non-negative, which is what turns a basis into a *critical region* of the
/// multiparametric analysis ([`crate::mplp`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BasisRow {
    /// Current basic value of this row (`≥ 0` at an optimal basis).
    pub value: Rational,
    /// Per original constraint `k`: `∂(basic value)/∂b_k` for this basis.
    pub binv: Vec<Rational>,
}

/// An optimal solution together with the exact right-hand-side sensitivity of
/// the basis that produced it. Returned by
/// [`SolverContext::solve_with_sensitivity`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SensitivitySolution {
    /// The canonical (lex-min vertex) optimal solution, exactly as
    /// [`crate::solve_canonical`] reports it.
    pub solution: Solution,
    /// Per constraint `k`: the dual price `∂v/∂b_k` of the final basis, in
    /// the problem's own objective sense. The optimal value as a function of
    /// the rhs is `v(b) = v + Σ_k dual_prices[k]·(b_k − b_k^current)` for as
    /// long as the basis stays primal feasible (see [`BasisRow`]); because
    /// the basis stays *dual* feasible for every rhs, this affine function
    /// bounds the true optimal value everywhere (weak duality) — from above
    /// for maximization problems, from below for minimization.
    pub dual_prices: Vec<Rational>,
    /// The rows of the final basis; all of them non-negative, and affine in
    /// the rhs.
    pub basis_rows: Vec<BasisRow>,
}

/// A reusable solver that warm-starts across LPs sharing a constraint matrix.
///
/// Create one context per logical sweep (or per worker thread in a batched
/// sweep) and call [`SolverContext::solve`] with each program in sequence.
/// Programs may differ arbitrarily — the context detects when the retained
/// basis is reusable — but the speedup materializes when consecutive programs
/// share their matrix, objective, and relations and differ only in the
/// right-hand side, ideally by a few entries.
///
/// ```
/// use projtile_arith::int;
/// use projtile_lp::{solve_canonical, Constraint, LinearProgram, Relation, SolverContext};
///
/// let mut lp = LinearProgram::maximize(vec![int(3), int(2)]);
/// lp.add_constraint(Constraint::new(vec![int(1), int(1)], Relation::Le, int(4)));
/// lp.add_constraint(Constraint::new(vec![int(1), int(0)], Relation::Le, int(2)));
///
/// let mut ctx = SolverContext::new();
/// for b in 1..=6 {
///     lp.constraints[0].rhs = int(b); // rhs-only change: warm re-entry
///     let warm = ctx.solve(&lp).unwrap();
///     assert_eq!(warm, solve_canonical(&lp).unwrap()); // bitwise-identical
/// }
/// assert_eq!(ctx.stats().cold_solves, 1);
/// assert_eq!(ctx.stats().warm_solves, 5);
/// ```
#[derive(Default)]
pub struct SolverContext {
    state: Option<WarmState>,
    stats: ContextStats,
    /// Set when the most recent solve returned an error. A tainted context
    /// may hold a tableau that a failed dual re-entry left mid-pivot, so
    /// pooled reuse ([`ContextPool`]) resets tainted contexts instead of
    /// handing their retained state to the next checkout.
    tainted: bool,
}

struct WarmState {
    /// The optimal tableau of the most recent successful solve.
    tableau: Tableau,
    /// The program it solved, kept to detect structural compatibility. Its
    /// right-hand sides may be stale (they are neither compared nor read:
    /// the tableau tracks the currently-installed rhs itself).
    lp: LinearProgram,
}

impl SolverContext {
    /// Creates an empty context; the first solve is necessarily cold.
    pub fn new() -> SolverContext {
        SolverContext::default()
    }

    /// Solves `lp`, returning exactly what [`crate::solve_canonical`] would
    /// return (bitwise-identical `Solution` or error), warm-starting when
    /// possible.
    pub fn solve(&mut self, lp: &LinearProgram) -> Result<Solution, LpError> {
        let result = self.solve_inner(lp, true);
        self.note(result)
    }

    /// Solves `lp` for its optimal **value**: the returned objective value is
    /// exactly the cold solver's, but the reported point may be any vertex of
    /// the optimal face (the lex-min canonicalization is skipped, so this is
    /// strictly cheaper on degenerate programs).
    pub fn solve_value(&mut self, lp: &LinearProgram) -> Result<Solution, LpError> {
        let result = self.solve_inner(lp, false);
        self.note(result)
    }

    /// The optimal objective value of `lp` — exactly [`crate::solve`]'s —
    /// without materializing the solution vector. The cheapest probe for
    /// value sweeps such as the parametric analysis.
    pub fn optimal_value(&mut self, lp: &LinearProgram) -> Result<Rational, LpError> {
        let result = self.optimal_value_inner(lp);
        self.note(result)
    }

    fn optimal_value_inner(&mut self, lp: &LinearProgram) -> Result<Rational, LpError> {
        lp.validate()?;
        if let Some(state) = self.state.as_mut() {
            if structurally_compatible(&state.lp, lp) {
                self.stats.warm_solves += 1;
                state.tableau.reinstall_rhs(lp);
                state.tableau.dual_iterate()?;
                return Ok(state.tableau.extract_value(lp));
            }
        }
        self.cold_solve(lp, false).map(|sol| sol.objective_value)
    }

    /// Like [`SolverContext::solve`], for sweep drivers that **own** the
    /// program and guarantee that only constraint right-hand sides changed
    /// since the previous call on this context (checked in debug builds).
    /// Skips the per-call structural comparison, which dominates re-entry
    /// cost on small programs.
    pub fn solve_rhs_update(&mut self, lp: &LinearProgram) -> Result<Solution, LpError> {
        let result = self.solve_rhs_update_inner(lp);
        self.note(result)
    }

    fn solve_rhs_update_inner(&mut self, lp: &LinearProgram) -> Result<Solution, LpError> {
        let Some(state) = self.state.as_mut() else {
            return self.cold_solve(lp, true);
        };
        debug_assert!(
            structurally_compatible(&state.lp, lp),
            "solve_rhs_update requires an unchanged program structure"
        );
        self.stats.warm_solves += 1;
        state.tableau.reinstall_rhs(lp);
        state.tableau.dual_iterate()?;
        state.tableau.canonicalize_vertex();
        Ok(state.tableau.extract_solution(lp))
    }

    /// Like [`SolverContext::optimal_value`], under the same caller guarantee
    /// as [`SolverContext::solve_rhs_update`].
    pub fn optimal_value_rhs_update(&mut self, lp: &LinearProgram) -> Result<Rational, LpError> {
        let result = self.optimal_value_rhs_update_inner(lp);
        self.note(result)
    }

    fn optimal_value_rhs_update_inner(&mut self, lp: &LinearProgram) -> Result<Rational, LpError> {
        let Some(state) = self.state.as_mut() else {
            return self.cold_solve(lp, false).map(|sol| sol.objective_value);
        };
        debug_assert!(
            structurally_compatible(&state.lp, lp),
            "optimal_value_rhs_update requires an unchanged program structure"
        );
        self.stats.warm_solves += 1;
        state.tableau.reinstall_rhs(lp);
        state.tableau.dual_iterate()?;
        Ok(state.tableau.extract_value(lp))
    }

    /// Solves `lp` like [`SolverContext::solve`] (canonical lex-min vertex,
    /// warm-started when possible) and additionally returns the exact
    /// right-hand-side sensitivity of the final basis: dual prices and the
    /// basic-value rows as affine functions of the rhs. This is the probe the
    /// multiparametric analysis ([`crate::mplp`]) hops between critical
    /// regions with — each probe yields one affine piece of the value
    /// function plus the polyhedron of right-hand sides on which it is exact.
    ///
    /// Returns [`LpError::Malformed`] if phase 1 had to drop redundant
    /// constraint rows (the constraint-to-row mapping, and with it the
    /// sensitivity data, is then lost). The programs of this workspace's
    /// sweeps (tiling LPs, relaxed HBL LPs) never trigger that.
    pub fn solve_with_sensitivity(
        &mut self,
        lp: &LinearProgram,
    ) -> Result<SensitivitySolution, LpError> {
        let result = self.solve_with_sensitivity_inner(lp);
        self.note(result)
    }

    fn solve_with_sensitivity_inner(
        &mut self,
        lp: &LinearProgram,
    ) -> Result<SensitivitySolution, LpError> {
        lp.validate()?;
        if let Some(state) = self.state.as_mut() {
            if structurally_compatible(&state.lp, lp) {
                self.stats.warm_solves += 1;
                state.tableau.reinstall_rhs(lp);
                state.tableau.dual_iterate()?;
                state.tableau.canonicalize_vertex();
                let solution = state.tableau.extract_solution(lp);
                let (dual_prices, basis_rows) = state.tableau.rhs_sensitivity(lp);
                return Ok(SensitivitySolution {
                    solution,
                    dual_prices,
                    basis_rows,
                });
            }
        }
        let solution = self.cold_solve(lp, true)?;
        let Some(state) = self.state.as_ref() else {
            return Err(LpError::Malformed(
                "program has redundant rows; rhs sensitivity is unavailable".into(),
            ));
        };
        let (dual_prices, basis_rows) = state.tableau.rhs_sensitivity(lp);
        Ok(SensitivitySolution {
            solution,
            dual_prices,
            basis_rows,
        })
    }

    /// Drops the retained tableau; the next solve is cold. Call when moving
    /// to an unrelated program family (a structure change is also detected
    /// automatically, so this is an optimization, not a correctness
    /// requirement).
    pub fn reset(&mut self) {
        self.state = None;
        self.tainted = false;
    }

    /// `true` iff the most recent solve on this context returned an error
    /// (infeasible, unbounded, malformed). [`ContextPool`] uses this to
    /// reset contexts on their way back into the pool so a failed solve's
    /// retained tableau never warm-starts an unrelated checkout.
    pub fn is_tainted(&self) -> bool {
        self.tainted
    }

    /// Records the outcome of a public solve entry point in the taint flag.
    fn note<T>(&mut self, result: Result<T, LpError>) -> Result<T, LpError> {
        self.tainted = result.is_err();
        result
    }

    /// Counters for this context's lifetime.
    pub fn stats(&self) -> ContextStats {
        self.stats
    }

    fn solve_inner(&mut self, lp: &LinearProgram, canonical: bool) -> Result<Solution, LpError> {
        lp.validate()?;
        if let Some(state) = self.state.as_mut() {
            if structurally_compatible(&state.lp, lp) {
                self.stats.warm_solves += 1;
                state.tableau.reinstall_rhs(lp);
                // The re-entered basis stays dual feasible; the dual simplex
                // either restores primal feasibility or produces an exact
                // infeasibility certificate (on which the cold path would
                // agree). The tableau stays structurally sound for further
                // rhs re-entries in both cases.
                state.tableau.dual_iterate()?;
                if canonical {
                    state.tableau.canonicalize_vertex();
                }
                return Ok(state.tableau.extract_solution(lp));
            }
        }
        self.cold_solve(lp, canonical)
    }

    fn cold_solve(&mut self, lp: &LinearProgram, canonical: bool) -> Result<Solution, LpError> {
        // Validate here (not only in solve_inner) so the *_rhs_update entry
        // points also reject malformed programs with an error, like every
        // other solve path, instead of panicking inside the tableau build.
        lp.validate()?;
        self.stats.cold_solves += 1;
        self.state = None;
        let mut tableau = Tableau::build(lp);
        tableau.phase_one()?;
        tableau.phase_two()?;
        if canonical {
            tableau.canonicalize_vertex();
        }
        let sol = tableau.extract_solution(lp);
        if !tableau.rows_removed {
            self.state = Some(WarmState {
                tableau,
                lp: lp.clone(),
            });
        }
        Ok(sol)
    }
}

/// A checkout/return pool of [`SolverContext`]s for batched drivers.
///
/// A long-lived analysis session (the `projtile-core` engine) answers many
/// queries whose sweeps each want a warm context, including from worker
/// threads of a batched fan-out. Creating a context is cheap, but a *warm*
/// context — one whose retained tableau matches the family about to be swept
/// — saves the cold first solve. The pool keeps contexts alive across
/// queries: [`ContextPool::checkout`] hands out the most recently returned
/// context (most likely to still be warm for the same program family), and
/// the [`PooledContext`] guard returns it automatically on drop.
///
/// The pool is internally synchronized, so per-worker states of a
/// `projtile_par::par_map_with` fan-out can check out contexts concurrently.
/// Reuse is purely a performance property: a structurally incompatible
/// retained basis cold-restarts transparently (see [`SolverContext::solve`]),
/// so any context can serve any program.
#[derive(Default)]
pub struct ContextPool {
    free: parking_lot::Mutex<Vec<SolverContext>>,
}

impl ContextPool {
    /// Creates an empty pool.
    pub fn new() -> ContextPool {
        ContextPool::default()
    }

    /// Checks out a context (LIFO: the most recently returned, i.e. the most
    /// likely to be warm). Creates a fresh one when the pool is empty. The
    /// guard returns the context on drop.
    pub fn checkout(&self) -> PooledContext<'_> {
        let ctx = self.free.lock().pop().unwrap_or_default();
        PooledContext {
            pool: self,
            ctx: Some(ctx),
        }
    }

    /// Number of contexts currently parked in the pool.
    pub fn idle(&self) -> usize {
        self.free.lock().len()
    }
}

/// RAII guard for a checked-out [`SolverContext`]; dereferences to the
/// context and returns it to its [`ContextPool`] on drop.
pub struct PooledContext<'a> {
    pool: &'a ContextPool,
    ctx: Option<SolverContext>,
}

impl std::ops::Deref for PooledContext<'_> {
    type Target = SolverContext;

    fn deref(&self) -> &SolverContext {
        self.ctx.as_ref().expect("context present until drop")
    }
}

impl std::ops::DerefMut for PooledContext<'_> {
    fn deref_mut(&mut self) -> &mut SolverContext {
        self.ctx.as_mut().expect("context present until drop")
    }
}

impl Drop for PooledContext<'_> {
    fn drop(&mut self) {
        if let Some(mut ctx) = self.ctx.take() {
            // A context whose last solve failed may hold a tableau the
            // failed re-entry left in a non-optimal state; returning it
            // as-is would carry that stale warm-start state into the next
            // checkout. Reset it so the next user starts cold.
            if ctx.is_tainted() {
                ctx.reset();
            }
            self.pool.free.lock().push(ctx);
        }
    }
}

/// `true` iff the two programs differ at most in constraint right-hand sides,
/// so a basis of one is dual feasible for the other.
fn structurally_compatible(a: &LinearProgram, b: &LinearProgram) -> bool {
    a.objective == b.objective
        && a.costs == b.costs
        && a.constraints.len() == b.constraints.len()
        && a.constraints
            .iter()
            .zip(&b.constraints)
            .all(|(ca, cb)| ca.relation == cb.relation && ca.coeffs == cb.coeffs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{Constraint, Relation};
    use crate::{solve, solve_canonical};
    use projtile_arith::{int, ratio};

    fn hbl_relaxed(rhs: [i64; 3]) -> LinearProgram {
        // The matmul HBL LP with relaxable rows: min s1+s2+s3 subject to
        // pairwise sums >= rhs_i.
        let mut lp = LinearProgram::minimize(vec![int(1), int(1), int(1)]);
        let rows = [[1, 1, 0], [0, 1, 1], [1, 0, 1]];
        for (row, b) in rows.iter().zip(rhs) {
            lp.add_constraint(Constraint::new(
                row.iter().map(|&v| int(v)).collect(),
                Relation::Ge,
                int(b),
            ));
        }
        lp
    }

    #[test]
    fn warm_matches_cold_across_rhs_family() {
        let mut ctx = SolverContext::new();
        // All 2^3 relaxation patterns of the matmul HBL LP, in Gray order.
        for mask in [0u32, 1, 3, 2, 6, 7, 5, 4] {
            let rhs = [
                i64::from(mask & 1 == 0),
                i64::from(mask & 2 == 0),
                i64::from(mask & 4 == 0),
            ];
            let lp = hbl_relaxed(rhs);
            let warm = ctx.solve(&lp);
            let cold = solve_canonical(&lp);
            assert_eq!(warm, cold, "mask {mask}");
            // The optimal value (unique) also matches the plain solver.
            if let (Ok(w), Ok(c)) = (&warm, &solve(&lp)) {
                assert_eq!(w.objective_value, c.objective_value);
            }
        }
        let stats = ctx.stats();
        // First solve is cold; every other one re-enters the same matrix.
        assert_eq!(stats.cold_solves, 1);
        assert_eq!(stats.warm_solves, 7);
    }

    #[test]
    fn warm_start_tracks_moving_rhs() {
        let mut ctx = SolverContext::new();
        let mut lp = LinearProgram::maximize(vec![int(3), int(2)]);
        lp.add_constraint(Constraint::new(vec![int(1), int(1)], Relation::Le, int(4)));
        lp.add_constraint(Constraint::new(vec![int(1), int(0)], Relation::Le, int(2)));
        for b in 1..=6 {
            lp.constraints[0].rhs = int(b);
            let warm = ctx.solve(&lp).unwrap();
            let cold = solve_canonical(&lp).unwrap();
            assert_eq!(warm, cold, "b = {b}");
        }
        assert_eq!(ctx.stats().cold_solves, 1);
        assert_eq!(ctx.stats().warm_solves, 5);
    }

    #[test]
    fn structure_change_triggers_cold_restart() {
        let mut ctx = SolverContext::new();
        let lp1 = hbl_relaxed([1, 1, 1]);
        assert_eq!(ctx.solve(&lp1).unwrap().objective_value, ratio(3, 2));
        // Different matrix: one extra constraint.
        let mut lp2 = hbl_relaxed([1, 1, 1]);
        lp2.add_constraint(Constraint::new(
            vec![int(1), int(0), int(0)],
            Relation::Ge,
            int(1),
        ));
        let warm = ctx.solve(&lp2).unwrap();
        assert_eq!(warm, solve_canonical(&lp2).unwrap());
        assert_eq!(ctx.stats().cold_solves, 2);
    }

    #[test]
    fn warm_detects_infeasibility() {
        let mut ctx = SolverContext::new();
        let mut lp = LinearProgram::maximize(vec![int(1)]);
        lp.add_constraint(Constraint::new(vec![int(1)], Relation::Le, int(2)));
        lp.add_constraint(Constraint::new(vec![int(-1)], Relation::Le, int(0)));
        assert!(ctx.solve(&lp).is_ok());
        // x <= 2 and -x <= -3 (x >= 3): infeasible, found by dual simplex.
        lp.constraints[1].rhs = int(-3);
        assert_eq!(ctx.solve(&lp), Err(LpError::Infeasible));
        assert_eq!(solve(&lp), Err(LpError::Infeasible));
        // And recovers when the rhs becomes feasible again.
        lp.constraints[1].rhs = int(-1);
        let sol = ctx.solve(&lp).unwrap();
        assert_eq!(sol, solve_canonical(&lp).unwrap());
    }

    #[test]
    fn degenerate_family_reports_canonical_vertex() {
        // max x+y st x+y <= b has a whole optimal edge; both paths must
        // report its lex-min vertex (x = 0, y = b) bitwise-identically.
        let mut ctx = SolverContext::new();
        let mut lp = LinearProgram::maximize(vec![int(1), int(1)]);
        lp.add_constraint(Constraint::new(vec![int(1), int(1)], Relation::Le, int(1)));
        for num in 0..8 {
            lp.constraints[0].rhs = ratio(num, 3);
            let warm = ctx.solve(&lp).unwrap();
            let cold = solve_canonical(&lp).unwrap();
            assert_eq!(warm, cold);
            assert_eq!(warm.values, vec![int(0), ratio(num, 3)]);
        }
    }

    #[test]
    fn solve_value_matches_cold_objective_on_degenerate_family() {
        let mut ctx = SolverContext::new();
        let mut lp = LinearProgram::maximize(vec![int(1), int(1)]);
        lp.add_constraint(Constraint::new(vec![int(1), int(1)], Relation::Le, int(1)));
        for num in 0..8 {
            lp.constraints[0].rhs = ratio(num, 3);
            let warm = ctx.solve_value(&lp).unwrap();
            let cold = solve(&lp).unwrap();
            assert_eq!(warm.objective_value, cold.objective_value);
            assert!(lp.is_feasible(&warm.values));
            assert_eq!(lp.objective_at(&warm.values), warm.objective_value);
        }
    }

    #[test]
    fn malformed_programs_error_on_every_entry_point() {
        // Regression: the rhs-update entry points must reject malformed
        // programs with an error (like solve/solve_canonical), not panic
        // inside the tableau build.
        let mut ragged = LinearProgram::maximize(vec![int(1), int(1)]);
        ragged.add_constraint(Constraint::new(vec![int(1)], Relation::Le, int(1)));
        let mut ctx = SolverContext::new();
        assert!(matches!(ctx.solve(&ragged), Err(LpError::Malformed(_))));
        assert!(matches!(
            ctx.solve_rhs_update(&ragged),
            Err(LpError::Malformed(_))
        ));
        assert!(matches!(
            ctx.optimal_value_rhs_update(&ragged),
            Err(LpError::Malformed(_))
        ));
        // And through the parametric sweep built on them.
        let res = crate::parametric::parametric_rhs(&ragged, &[int(1)], int(0), int(1));
        assert!(matches!(res, Err(LpError::Malformed(_))));
    }

    #[test]
    fn context_pool_reuses_warm_contexts() {
        let pool = ContextPool::new();
        let mut lp = LinearProgram::maximize(vec![int(3), int(2)]);
        lp.add_constraint(Constraint::new(vec![int(1), int(1)], Relation::Le, int(4)));
        lp.add_constraint(Constraint::new(vec![int(1), int(0)], Relation::Le, int(2)));
        {
            let mut ctx = pool.checkout();
            assert_eq!(ctx.solve(&lp).unwrap(), solve_canonical(&lp).unwrap());
            assert_eq!(ctx.stats().cold_solves, 1);
        } // returned on drop
        assert_eq!(pool.idle(), 1);
        {
            // The returned context is still warm for the same family.
            let mut ctx = pool.checkout();
            lp.constraints[0].rhs = int(6);
            assert_eq!(ctx.solve(&lp).unwrap(), solve_canonical(&lp).unwrap());
            let stats = ctx.stats();
            assert_eq!(stats.cold_solves, 1);
            assert_eq!(stats.warm_solves, 1);
        }
        // Concurrent checkouts get distinct contexts.
        let a = pool.checkout();
        let b = pool.checkout();
        assert_eq!(pool.idle(), 0);
        drop(a);
        drop(b);
        assert_eq!(pool.idle(), 2);
    }

    #[test]
    fn pool_resets_contexts_after_failed_solves() {
        // Regression: a context returned to the pool after a failed solve
        // must not carry its (possibly mid-pivot) warm tableau into the next
        // checkout. Interleave failing and succeeding solves through one
        // pool and check every answer against the cold oracle.
        let pool = ContextPool::new();
        let mut lp = LinearProgram::maximize(vec![int(1)]);
        lp.add_constraint(Constraint::new(vec![int(1)], Relation::Le, int(2)));
        lp.add_constraint(Constraint::new(vec![int(-1)], Relation::Le, int(0)));
        let mut failures = 0u64;
        for rhs in [0i64, -3, -1, -5, 0, -4, -2, 0] {
            lp.constraints[1].rhs = int(rhs);
            let cold = solve_canonical(&lp);
            let mut ctx = pool.checkout();
            let warm = ctx.solve(&lp);
            assert_eq!(warm, cold, "rhs = {rhs}");
            assert_eq!(ctx.is_tainted(), warm.is_err());
            if warm.is_err() {
                failures += 1;
            } else {
                // Every solve after a failure starts cold: the pool reset
                // the tainted context on its way back in, so no retained
                // tableau survived the error.
                let stats = ctx.stats();
                assert_eq!(
                    stats.cold_solves,
                    failures + 1,
                    "rhs = {rhs}: expected a cold restart after each failure"
                );
            }
        }
        assert!(failures >= 3, "the interleaving must actually fail");
        // The single pooled context was reused throughout.
        assert_eq!(pool.idle(), 1);
    }

    #[test]
    fn tainted_context_recovers_via_reset() {
        let mut ctx = SolverContext::new();
        let mut lp = LinearProgram::maximize(vec![int(1)]);
        lp.add_constraint(Constraint::new(vec![int(1)], Relation::Le, int(2)));
        lp.add_constraint(Constraint::new(vec![int(-1)], Relation::Le, int(-3)));
        assert_eq!(ctx.solve(&lp), Err(LpError::Infeasible));
        assert!(ctx.is_tainted());
        ctx.reset();
        assert!(!ctx.is_tainted());
        lp.constraints[1].rhs = int(0);
        assert_eq!(ctx.solve(&lp), solve_canonical(&lp));
        assert!(!ctx.is_tainted());
    }

    #[test]
    fn negative_rhs_normalization_round_trips() {
        // The build path negates rows with negative rhs; a warm re-entry must
        // apply the same sign convention.
        let mut ctx = SolverContext::new();
        let mut lp = LinearProgram::minimize(vec![int(1)]);
        lp.add_constraint(Constraint::new(vec![int(-1)], Relation::Le, int(-3)));
        assert_eq!(ctx.solve(&lp).unwrap().objective_value, int(3));
        for b in [-5i64, -2, -7, 0] {
            lp.constraints[0].rhs = int(b);
            let warm = ctx.solve(&lp);
            let cold = solve_canonical(&lp);
            assert_eq!(warm, cold, "b = {b}");
        }
    }
}
