//! Explicit construction of the dual of a linear program.
//!
//! Theorem 3 of the paper is a strong-duality argument: the tiling LP (5.1) is
//! the dual of (a lifted form of) the Theorem-2 bound, so the optimal tile
//! attains the lower bound. Rather than trusting reduced costs extracted from
//! a tableau, this module builds the dual program explicitly so that the
//! equality of the primal and dual optima can be *checked exactly* by solving
//! both sides.
//!
//! Duality rules used (primal variables are non-negative in this crate):
//!
//! | primal (max)                | dual (min)                    |
//! |-----------------------------|-------------------------------|
//! | constraint `a·x <= b`       | variable `y >= 0`             |
//! | constraint `a·x >= b`       | variable `y <= 0`             |
//! | constraint `a·x == b`       | variable `y` free             |
//! | variable `x_j >= 0`         | constraint `A_j·y >= c_j`     |
//!
//! (and symmetrically for a minimization primal). Since the solver only
//! handles non-negative variables, non-positive dual variables are negated and
//! free dual variables are split into a difference of two non-negative ones;
//! this changes neither feasibility nor the optimal value.

use projtile_arith::Rational;

use crate::problem::{Constraint, LinearProgram, Objective, Relation};

/// Builds the dual of `lp` as another [`LinearProgram`] over non-negative
/// variables. The dual's optimal objective value equals the primal's whenever
/// the primal has a finite optimum (strong duality); the test suite and the
/// tightness checks in `projtile-core` rely on that equality being exact.
pub fn dual_program(lp: &LinearProgram) -> LinearProgram {
    let m = lp.num_constraints();
    let n = lp.num_vars();

    // For each primal constraint, decide how its dual variable is represented:
    // a scale factor for a single non-negative variable, or a split pair.
    #[derive(Clone, Copy)]
    enum Repr {
        /// One non-negative column, multiplied by the given sign.
        Signed(i32),
        /// Two non-negative columns `u - v` (free variable).
        Split,
    }

    let reprs: Vec<Repr> = lp
        .constraints
        .iter()
        .map(|c| match (lp.objective, c.relation) {
            // max primal: Le -> y >= 0, Ge -> y <= 0, Eq -> free
            (Objective::Maximize, Relation::Le) => Repr::Signed(1),
            (Objective::Maximize, Relation::Ge) => Repr::Signed(-1),
            (Objective::Maximize, Relation::Eq) => Repr::Split,
            // min primal: Ge -> y >= 0, Le -> y <= 0, Eq -> free
            (Objective::Minimize, Relation::Ge) => Repr::Signed(1),
            (Objective::Minimize, Relation::Le) => Repr::Signed(-1),
            (Objective::Minimize, Relation::Eq) => Repr::Split,
        })
        .collect();

    // Map each primal constraint to its dual column(s).
    let mut col_of: Vec<(usize, Option<usize>)> = Vec::with_capacity(m);
    let mut num_dual_vars = 0usize;
    for repr in &reprs {
        match repr {
            Repr::Signed(_) => {
                col_of.push((num_dual_vars, None));
                num_dual_vars += 1;
            }
            Repr::Split => {
                col_of.push((num_dual_vars, Some(num_dual_vars + 1)));
                num_dual_vars += 2;
            }
        }
    }

    // Dual objective: b^T y.
    let mut costs = vec![Rational::zero(); num_dual_vars];
    for (i, c) in lp.constraints.iter().enumerate() {
        let (col, split) = col_of[i];
        match reprs[i] {
            Repr::Signed(sign) => {
                costs[col] = if sign >= 0 { c.rhs.clone() } else { -&c.rhs };
            }
            Repr::Split => {
                costs[col] = c.rhs.clone();
                costs[split.unwrap()] = -&c.rhs;
            }
        }
    }

    let (dual_objective, dual_relation) = match lp.objective {
        Objective::Maximize => (Objective::Minimize, Relation::Ge),
        Objective::Minimize => (Objective::Maximize, Relation::Le),
    };

    let mut dual = LinearProgram {
        objective: dual_objective,
        costs,
        constraints: Vec::with_capacity(n),
    };

    // One dual constraint per primal variable: column(A)_j^T y (>= or <=) c_j.
    for j in 0..n {
        let mut coeffs = vec![Rational::zero(); num_dual_vars];
        for (i, c) in lp.constraints.iter().enumerate() {
            let a_ij = &c.coeffs[j];
            if a_ij.is_zero() {
                continue;
            }
            let (col, split) = col_of[i];
            match reprs[i] {
                Repr::Signed(sign) => {
                    coeffs[col] = if sign >= 0 { a_ij.clone() } else { -a_ij };
                }
                Repr::Split => {
                    coeffs[col] = a_ij.clone();
                    coeffs[split.unwrap()] = -a_ij;
                }
            }
        }
        dual.add_constraint(Constraint::new(coeffs, dual_relation, lp.costs[j].clone()));
    }

    dual
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{solve, Constraint, LinearProgram, Relation};
    use projtile_arith::{int, ratio};

    fn le(coeffs: Vec<Rational>, rhs: Rational) -> Constraint {
        Constraint::new(coeffs, Relation::Le, rhs)
    }

    fn ge(coeffs: Vec<Rational>, rhs: Rational) -> Constraint {
        Constraint::new(coeffs, Relation::Ge, rhs)
    }

    #[test]
    fn strong_duality_max_le() {
        let mut lp = LinearProgram::maximize(vec![int(3), int(5)]);
        lp.add_constraint(le(vec![int(1), int(0)], int(4)));
        lp.add_constraint(le(vec![int(0), int(2)], int(12)));
        lp.add_constraint(le(vec![int(3), int(2)], int(18)));
        let p = solve(&lp).unwrap();
        let d = solve(&dual_program(&lp)).unwrap();
        assert_eq!(p.objective_value, int(36));
        assert_eq!(p.objective_value, d.objective_value);
    }

    #[test]
    fn strong_duality_min_ge() {
        let mut lp = LinearProgram::minimize(vec![int(2), int(3)]);
        lp.add_constraint(ge(vec![int(1), int(1)], int(4)));
        lp.add_constraint(ge(vec![int(1), int(0)], int(1)));
        let p = solve(&lp).unwrap();
        let d = solve(&dual_program(&lp)).unwrap();
        assert_eq!(p.objective_value, d.objective_value);
    }

    #[test]
    fn strong_duality_with_equalities_and_mixed_relations() {
        let mut lp = LinearProgram::maximize(vec![int(1), int(2), int(-1)]);
        lp.add_constraint(Constraint::new(
            vec![int(1), int(1), int(1)],
            Relation::Eq,
            int(3),
        ));
        lp.add_constraint(le(vec![int(1), int(0), int(2)], int(4)));
        lp.add_constraint(ge(vec![int(0), int(1), int(0)], int(1)));
        let p = solve(&lp).unwrap();
        let d = solve(&dual_program(&lp)).unwrap();
        assert_eq!(p.objective_value, d.objective_value);
    }

    #[test]
    fn hbl_and_tiling_lp_are_dual_pairs() {
        // The paper's observation that LP (3.3) (tiling, large bounds) and LP
        // (3.2) (HBL) are dual: both optimal values are 3/2 for matmul.
        let mut tiling = LinearProgram::maximize(vec![int(1), int(1), int(1)]);
        tiling.add_constraint(le(vec![int(1), int(0), int(1)], int(1)));
        tiling.add_constraint(le(vec![int(1), int(1), int(0)], int(1)));
        tiling.add_constraint(le(vec![int(0), int(1), int(1)], int(1)));
        let dual = dual_program(&tiling);
        let p = solve(&tiling).unwrap();
        let d = solve(&dual).unwrap();
        assert_eq!(p.objective_value, ratio(3, 2));
        assert_eq!(d.objective_value, ratio(3, 2));
    }

    #[test]
    fn dual_of_dual_value_matches_primal() {
        let mut lp = LinearProgram::maximize(vec![int(2), int(1)]);
        lp.add_constraint(le(vec![int(1), int(1)], int(5)));
        lp.add_constraint(le(vec![int(3), int(1)], int(9)));
        let p = solve(&lp).unwrap();
        let dd = dual_program(&dual_program(&lp));
        let pdd = solve(&dd).unwrap();
        assert_eq!(p.objective_value, pdd.objective_value);
    }
}
