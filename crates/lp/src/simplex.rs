//! Dense two-phase simplex over exact rationals with Bland's rule.
//!
//! The LPs solved in this workspace are tiny (at most a few dozen variables
//! and constraints), so the implementation optimizes for exactness and
//! auditability rather than speed: a dense tableau of [`Rational`]s, explicit
//! artificial variables, and Bland's anti-cycling pivot rule which guarantees
//! termination even on the degenerate programs that arise when loop bounds sit
//! exactly on a crossover (e.g. `L = √M`).

use projtile_arith::Rational;

use crate::problem::{dot, LinearProgram, Objective, Relation, Solution};
use crate::LpError;

/// Solves a linear program to optimality.
///
/// Returns the optimal objective value (in the problem's own sense) and the
/// optimal values of the structural variables. The returned point is always
/// exactly feasible (this is asserted in debug builds and checked by the test
/// suite via [`LinearProgram::is_feasible`]).
pub fn solve(lp: &LinearProgram) -> Result<Solution, LpError> {
    lp.validate()?;
    let mut tableau = Tableau::build(lp);
    tableau.phase_one()?;
    tableau.phase_two()?;
    let values = tableau.structural_values();
    let raw = tableau.objective_value();
    let objective_value = match lp.objective {
        Objective::Maximize => raw,
        Objective::Minimize => -raw,
    };
    debug_assert!(
        lp.is_feasible(&values),
        "simplex returned an infeasible point"
    );
    debug_assert_eq!(lp.objective_at(&values), objective_value);
    Ok(Solution {
        objective_value,
        values,
    })
}

/// Internal simplex tableau.
struct Tableau {
    /// Constraint rows; each row has `num_cols + 1` entries (rhs last).
    rows: Vec<Vec<Rational>>,
    /// Objective row in the `z - c·x = 0` convention (rhs entry = objective value).
    obj: Vec<Rational>,
    /// Basic variable (column index) for each row.
    basis: Vec<usize>,
    /// Number of structural variables.
    num_structural: usize,
    /// Total number of variable columns (structural + slack + artificial).
    num_cols: usize,
    /// Column indices of artificial variables.
    artificial_cols: Vec<usize>,
    /// Objective coefficients of the original problem, negated if minimizing
    /// (so the tableau always maximizes).
    max_costs: Vec<Rational>,
}

impl Tableau {
    fn build(lp: &LinearProgram) -> Tableau {
        let n = lp.num_vars();
        let m = lp.num_constraints();

        // Normalize rows to have non-negative right-hand sides.
        let mut norm: Vec<(Vec<Rational>, Relation, Rational)> = Vec::with_capacity(m);
        for c in &lp.constraints {
            if c.rhs.is_negative() {
                let coeffs: Vec<Rational> = c.coeffs.iter().map(|v| -v).collect();
                let relation = match c.relation {
                    Relation::Le => Relation::Ge,
                    Relation::Ge => Relation::Le,
                    Relation::Eq => Relation::Eq,
                };
                norm.push((coeffs, relation, -&c.rhs));
            } else {
                norm.push((c.coeffs.clone(), c.relation, c.rhs.clone()));
            }
        }

        // Count slack/surplus and artificial columns.
        let num_slack = norm.iter().filter(|(_, r, _)| *r != Relation::Eq).count();
        let num_artificial = norm.iter().filter(|(_, r, _)| *r != Relation::Le).count();
        let num_cols = n + num_slack + num_artificial;

        let mut rows = Vec::with_capacity(m);
        let mut basis = Vec::with_capacity(m);
        let mut artificial_cols = Vec::with_capacity(num_artificial);
        let mut next_slack = n;
        let mut next_artificial = n + num_slack;

        for (coeffs, relation, rhs) in &norm {
            let mut row = vec![Rational::zero(); num_cols + 1];
            row[..n].clone_from_slice(coeffs);
            row[num_cols] = rhs.clone();
            match relation {
                Relation::Le => {
                    row[next_slack] = Rational::one();
                    basis.push(next_slack);
                    next_slack += 1;
                }
                Relation::Ge => {
                    row[next_slack] = -Rational::one();
                    next_slack += 1;
                    row[next_artificial] = Rational::one();
                    basis.push(next_artificial);
                    artificial_cols.push(next_artificial);
                    next_artificial += 1;
                }
                Relation::Eq => {
                    row[next_artificial] = Rational::one();
                    basis.push(next_artificial);
                    artificial_cols.push(next_artificial);
                    next_artificial += 1;
                }
            }
            rows.push(row);
        }

        let max_costs: Vec<Rational> = match lp.objective {
            Objective::Maximize => lp.costs.clone(),
            Objective::Minimize => lp.costs.iter().map(|c| -c).collect(),
        };

        Tableau {
            rows,
            obj: vec![Rational::zero(); num_cols + 1],
            basis,
            num_structural: n,
            num_cols,
            artificial_cols,
            max_costs,
        }
    }

    /// Installs an objective row for maximizing `costs · x` (costs indexed by
    /// column; missing columns have zero cost) and canonicalizes it against
    /// the current basis.
    fn set_objective(&mut self, costs: &[Rational]) {
        self.obj.clear();
        self.obj.resize(self.num_cols + 1, Rational::zero());
        for (j, c) in costs.iter().enumerate() {
            if !c.is_zero() {
                self.obj[j] = -c;
            }
        }
        // Split borrows: the objective row and the constraint rows are
        // disjoint fields, so no row needs to be cloned.
        let Tableau {
            obj, rows, basis, ..
        } = self;
        for (i, &b) in basis.iter().enumerate() {
            if obj[b].is_zero() {
                continue;
            }
            // The basic column of row i is exactly 1, so obj[b] lands on
            // exactly zero; taking it out up front keeps the loop disjoint.
            let factor = std::mem::replace(&mut obj[b], Rational::zero());
            for (j, r) in rows[i].iter().enumerate() {
                if j != b && !r.is_zero() {
                    obj[j].sub_mul_assign(&factor, r);
                }
            }
        }
    }

    fn pivot(&mut self, row: usize, col: usize) {
        // Take the pivot row out of the tableau: this both avoids cloning it
        // (the buffer is moved, not copied) and lets every other row borrow
        // it while being updated.
        let mut pivot_row = std::mem::take(&mut self.rows[row]);

        // Normalize the pivot row; its pivot entry becomes exactly 1.
        let pivot = std::mem::replace(&mut pivot_row[col], Rational::one());
        debug_assert!(!pivot.is_zero());
        let inv = pivot.recip();
        if !inv.is_one() {
            for (j, entry) in pivot_row.iter_mut().enumerate() {
                if j != col && !entry.is_zero() {
                    *entry *= &inv;
                }
            }
        }

        // Columns (including the rhs) where the pivot row is nonzero: every
        // other column of the tableau is untouched by this pivot and is
        // skipped wholesale below.
        let nonzero: Vec<usize> = pivot_row
            .iter()
            .enumerate()
            .filter(|&(j, v)| j != col && !v.is_zero())
            .map(|(j, _)| j)
            .collect();

        // Eliminate the pivot column from every other row and the objective.
        // Each touched entry pays a single fused `x -= factor * p` update;
        // the pivot-column entry itself lands on exactly zero (the pivot row
        // has a 1 there), so it is written directly.
        for (i, r) in self.rows.iter_mut().enumerate() {
            if i == row || r[col].is_zero() {
                continue;
            }
            let factor = std::mem::replace(&mut r[col], Rational::zero());
            for &j in &nonzero {
                r[j].sub_mul_assign(&factor, &pivot_row[j]);
            }
        }
        if !self.obj[col].is_zero() {
            let factor = std::mem::replace(&mut self.obj[col], Rational::zero());
            for &j in &nonzero {
                self.obj[j].sub_mul_assign(&factor, &pivot_row[j]);
            }
        }

        self.rows[row] = pivot_row;
        self.basis[row] = col;
    }

    /// Runs simplex iterations until optimality or unboundedness, using
    /// Bland's rule. Columns in `forbidden` may never enter the basis.
    fn iterate(&mut self, forbidden: &[bool]) -> Result<(), LpError> {
        loop {
            // Entering column: smallest index with negative reduced cost.
            let entering = (0..self.num_cols).find(|&j| !forbidden[j] && self.obj[j].is_negative());
            let Some(col) = entering else {
                return Ok(());
            };
            // Leaving row: minimum ratio test, ties broken by smallest basic
            // index. `cmp_div` compares rhs_i/a_i against rhs_b/a_b by cross
            // multiplication, so no quotient is ever materialized.
            let mut best: Option<usize> = None;
            for i in 0..self.rows.len() {
                if !self.rows[i][col].is_positive() {
                    continue;
                }
                best = Some(match best {
                    None => i,
                    Some(b) => {
                        let ord = Rational::cmp_div(
                            &self.rows[i][self.num_cols],
                            &self.rows[i][col],
                            &self.rows[b][self.num_cols],
                            &self.rows[b][col],
                        );
                        match ord {
                            std::cmp::Ordering::Less => i,
                            std::cmp::Ordering::Equal if self.basis[i] < self.basis[b] => i,
                            _ => b,
                        }
                    }
                });
            }
            let Some(row) = best else {
                return Err(LpError::Unbounded);
            };
            self.pivot(row, col);
        }
    }

    fn phase_one(&mut self) -> Result<(), LpError> {
        if self.artificial_cols.is_empty() {
            return Ok(());
        }
        // Maximize -(sum of artificials).
        let mut costs = vec![Rational::zero(); self.num_cols];
        for &a in &self.artificial_cols {
            costs[a] = -Rational::one();
        }
        self.set_objective(&costs);
        let forbidden = vec![false; self.num_cols];
        self.iterate(&forbidden)?;
        if self.objective_value().is_negative() {
            return Err(LpError::Infeasible);
        }
        self.drive_out_artificials();
        Ok(())
    }

    /// After phase 1, pivots any artificial variable still in the basis (at
    /// value zero) out of it, or drops its row if it is entirely redundant.
    fn drive_out_artificials(&mut self) {
        let is_artificial = |col: usize, arts: &[usize]| arts.contains(&col);
        let arts = self.artificial_cols.clone();
        let mut row_idx = 0;
        while row_idx < self.rows.len() {
            if is_artificial(self.basis[row_idx], &arts) {
                // Find any non-artificial column with a nonzero entry.
                let col = (0..self.num_cols)
                    .filter(|j| !is_artificial(*j, &arts))
                    .find(|&j| !self.rows[row_idx][j].is_zero());
                match col {
                    Some(c) => {
                        self.pivot(row_idx, c);
                        row_idx += 1;
                    }
                    None => {
                        // Redundant row: every real coefficient is zero.
                        self.rows.remove(row_idx);
                        self.basis.remove(row_idx);
                    }
                }
            } else {
                row_idx += 1;
            }
        }
    }

    fn phase_two(&mut self) -> Result<(), LpError> {
        let mut costs = vec![Rational::zero(); self.num_cols];
        costs[..self.num_structural].clone_from_slice(&self.max_costs);
        self.set_objective(&costs);
        let mut forbidden = vec![false; self.num_cols];
        for &a in &self.artificial_cols {
            forbidden[a] = true;
        }
        self.iterate(&forbidden)
    }

    fn structural_values(&self) -> Vec<Rational> {
        let mut values = vec![Rational::zero(); self.num_structural];
        for (i, &b) in self.basis.iter().enumerate() {
            if b < self.num_structural {
                values[b] = self.rows[i][self.num_cols].clone();
            }
        }
        values
    }

    fn objective_value(&self) -> Rational {
        self.obj[self.num_cols].clone()
    }
}

/// Verifies that `candidate` is an optimal solution of `lp` by checking
/// feasibility and comparing the objective value against a fresh solve.
/// Useful in tests for validating hand-derived closed forms.
pub fn verify_optimal(lp: &LinearProgram, candidate: &[Rational]) -> Result<bool, LpError> {
    if !lp.is_feasible(candidate) {
        return Ok(false);
    }
    let sol = solve(lp)?;
    Ok(dot(&lp.costs, candidate) == sol.objective_value)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::Constraint;
    use projtile_arith::{int, ratio};

    fn le(coeffs: Vec<projtile_arith::Rational>, rhs: projtile_arith::Rational) -> Constraint {
        Constraint::new(coeffs, Relation::Le, rhs)
    }

    fn ge(coeffs: Vec<projtile_arith::Rational>, rhs: projtile_arith::Rational) -> Constraint {
        Constraint::new(coeffs, Relation::Ge, rhs)
    }

    #[test]
    fn simple_max_le() {
        // max x + y st x <= 2, y <= 3, x + y <= 4 -> 4
        let mut lp = LinearProgram::maximize(vec![int(1), int(1)]);
        lp.add_constraint(le(vec![int(1), int(0)], int(2)));
        lp.add_constraint(le(vec![int(0), int(1)], int(3)));
        lp.add_constraint(le(vec![int(1), int(1)], int(4)));
        let sol = solve(&lp).unwrap();
        assert_eq!(sol.objective_value, int(4));
        assert!(lp.is_feasible(&sol.values));
    }

    #[test]
    fn simple_min_ge() {
        // min 2x + 3y st x + y >= 4, x >= 1 -> x=4,y=0 cost 8? check: cost(4,0)=8, cost(1,3)=11 -> 8
        let mut lp = LinearProgram::minimize(vec![int(2), int(3)]);
        lp.add_constraint(ge(vec![int(1), int(1)], int(4)));
        lp.add_constraint(ge(vec![int(1), int(0)], int(1)));
        let sol = solve(&lp).unwrap();
        assert_eq!(sol.objective_value, int(8));
        assert_eq!(sol.values, vec![int(4), int(0)]);
    }

    #[test]
    fn equality_constraints() {
        // max x + 2y st x + y == 3, y <= 2 -> x=1, y=2, obj 5
        let mut lp = LinearProgram::maximize(vec![int(1), int(2)]);
        lp.add_constraint(Constraint::new(vec![int(1), int(1)], Relation::Eq, int(3)));
        lp.add_constraint(le(vec![int(0), int(1)], int(2)));
        let sol = solve(&lp).unwrap();
        assert_eq!(sol.objective_value, int(5));
        assert_eq!(sol.values, vec![int(1), int(2)]);
    }

    #[test]
    fn detects_infeasible() {
        let mut lp = LinearProgram::maximize(vec![int(1)]);
        lp.add_constraint(le(vec![int(1)], int(1)));
        lp.add_constraint(ge(vec![int(1)], int(2)));
        assert_eq!(solve(&lp), Err(LpError::Infeasible));
    }

    #[test]
    fn detects_unbounded() {
        let mut lp = LinearProgram::maximize(vec![int(1), int(1)]);
        lp.add_constraint(ge(vec![int(1), int(0)], int(1)));
        assert_eq!(solve(&lp), Err(LpError::Unbounded));
    }

    #[test]
    fn no_constraints() {
        // max -x -> 0 at x=0; max x -> unbounded.
        let lp = LinearProgram::maximize(vec![int(-1)]);
        assert_eq!(solve(&lp).unwrap().objective_value, int(0));
        let lp2 = LinearProgram::maximize(vec![int(1)]);
        assert_eq!(solve(&lp2), Err(LpError::Unbounded));
    }

    #[test]
    fn negative_rhs_handled() {
        // min x st -x <= -3  (i.e. x >= 3)
        let mut lp = LinearProgram::minimize(vec![int(1)]);
        lp.add_constraint(le(vec![int(-1)], int(-3)));
        let sol = solve(&lp).unwrap();
        assert_eq!(sol.objective_value, int(3));
    }

    #[test]
    fn fractional_optimum_hbl_matmul() {
        // The matmul HBL LP: min s1+s2+s3 st s1+s2>=1, s2+s3>=1, s1+s3>=1.
        let mut lp = LinearProgram::minimize(vec![int(1), int(1), int(1)]);
        lp.add_constraint(ge(vec![int(1), int(1), int(0)], int(1)));
        lp.add_constraint(ge(vec![int(0), int(1), int(1)], int(1)));
        lp.add_constraint(ge(vec![int(1), int(0), int(1)], int(1)));
        let sol = solve(&lp).unwrap();
        assert_eq!(sol.objective_value, ratio(3, 2));
        assert_eq!(sol.values, vec![ratio(1, 2), ratio(1, 2), ratio(1, 2)]);
    }

    #[test]
    fn tiling_lp_matmul_small_l3() {
        // LP (6.3) of the paper: max l1+l2+l3 st l1+l3<=1, l1+l2<=1, l2+l3<=1, l3<=beta3.
        // With beta3 = 1/4 the optimum is 1 + 1/4.
        let beta3 = ratio(1, 4);
        let mut lp = LinearProgram::maximize(vec![int(1), int(1), int(1)]);
        lp.add_constraint(le(vec![int(1), int(0), int(1)], int(1)));
        lp.add_constraint(le(vec![int(1), int(1), int(0)], int(1)));
        lp.add_constraint(le(vec![int(0), int(1), int(1)], int(1)));
        lp.add_constraint(le(vec![int(0), int(0), int(1)], beta3.clone()));
        let sol = solve(&lp).unwrap();
        assert_eq!(sol.objective_value, &int(1) + &beta3);
        // With beta3 = 3/4 >= 1/2 the classical 3/2 optimum is retained.
        let mut lp2 = LinearProgram::maximize(vec![int(1), int(1), int(1)]);
        lp2.add_constraint(le(vec![int(1), int(0), int(1)], int(1)));
        lp2.add_constraint(le(vec![int(1), int(1), int(0)], int(1)));
        lp2.add_constraint(le(vec![int(0), int(1), int(1)], int(1)));
        lp2.add_constraint(le(vec![int(0), int(0), int(1)], ratio(3, 4)));
        assert_eq!(solve(&lp2).unwrap().objective_value, ratio(3, 2));
    }

    #[test]
    fn degenerate_lp_terminates() {
        // Highly degenerate: several redundant constraints through the optimum.
        let mut lp = LinearProgram::maximize(vec![int(1), int(1)]);
        for _ in 0..5 {
            lp.add_constraint(le(vec![int(1), int(1)], int(1)));
        }
        lp.add_constraint(le(vec![int(1), int(0)], int(1)));
        lp.add_constraint(le(vec![int(0), int(1)], int(1)));
        lp.add_constraint(Constraint::new(vec![int(1), int(-1)], Relation::Eq, int(0)));
        let sol = solve(&lp).unwrap();
        assert_eq!(sol.objective_value, int(1));
    }

    #[test]
    fn redundant_equality_rows_dropped() {
        // x + y == 2 stated twice plus its double.
        let mut lp = LinearProgram::maximize(vec![int(1), int(0)]);
        lp.add_constraint(Constraint::new(vec![int(1), int(1)], Relation::Eq, int(2)));
        lp.add_constraint(Constraint::new(vec![int(1), int(1)], Relation::Eq, int(2)));
        lp.add_constraint(Constraint::new(vec![int(2), int(2)], Relation::Eq, int(4)));
        let sol = solve(&lp).unwrap();
        assert_eq!(sol.objective_value, int(2));
    }

    #[test]
    fn verify_optimal_works() {
        let mut lp = LinearProgram::maximize(vec![int(1), int(1)]);
        lp.add_constraint(le(vec![int(1), int(1)], int(1)));
        assert!(verify_optimal(&lp, &[ratio(1, 2), ratio(1, 2)]).unwrap());
        assert!(verify_optimal(&lp, &[int(1), int(0)]).unwrap());
        assert!(!verify_optimal(&lp, &[int(0), int(0)]).unwrap());
        assert!(!verify_optimal(&lp, &[int(2), int(0)]).unwrap());
    }

    #[test]
    fn malformed_rejected() {
        let mut lp = LinearProgram::maximize(vec![int(1), int(1)]);
        lp.add_constraint(le(vec![int(1)], int(1)));
        assert!(matches!(solve(&lp), Err(LpError::Malformed(_))));
    }
}
