//! Dense two-phase simplex over exact rationals with Bland's rule.
//!
//! The LPs solved in this workspace are tiny (at most a few dozen variables
//! and constraints), so the implementation optimizes for exactness and
//! auditability rather than speed: a dense tableau of [`Rational`]s, explicit
//! artificial variables, and Bland's anti-cycling pivot rule which guarantees
//! termination even on the degenerate programs that arise when loop bounds sit
//! exactly on a crossover (e.g. `L = √M`).

use projtile_arith::Rational;

use crate::problem::{dot, LinearProgram, Objective, Relation, Solution};
use crate::LpError;

/// Solves a linear program to optimality.
///
/// Returns the optimal objective value (in the problem's own sense) and the
/// optimal values of the structural variables. The returned point is always
/// exactly feasible (this is asserted in debug builds and checked by the test
/// suite via [`LinearProgram::is_feasible`]).
/// When the optimum is not unique, the reported point is whichever optimal
/// vertex Bland's pivot path reaches; see [`solve_canonical`] for a
/// path-independent choice.
///
/// ```
/// use projtile_arith::{int, ratio};
/// use projtile_lp::{solve, Constraint, LinearProgram, Relation};
///
/// // The paper's tiling LP (6.3) with β3 = 1/4:
/// // max λ1+λ2+λ3 st λ1+λ3 ≤ 1, λ1+λ2 ≤ 1, λ2+λ3 ≤ 1, λ3 ≤ 1/4.
/// let mut lp = LinearProgram::maximize(vec![int(1), int(1), int(1)]);
/// for (row, rhs) in [
///     ([1, 0, 1], int(1)),
///     ([1, 1, 0], int(1)),
///     ([0, 1, 1], int(1)),
///     ([0, 0, 1], ratio(1, 4)),
/// ] {
///     lp.add_constraint(Constraint::new(
///         row.iter().map(|&v| int(v)).collect(),
///         Relation::Le,
///         rhs,
///     ));
/// }
/// let sol = solve(&lp).unwrap();
/// assert_eq!(sol.objective_value, ratio(5, 4)); // 1 + β3, exactly
/// assert!(lp.is_feasible(&sol.values));
/// ```
pub fn solve(lp: &LinearProgram) -> Result<Solution, LpError> {
    lp.validate()?;
    let mut tableau = Tableau::build(lp);
    tableau.phase_one()?;
    tableau.phase_two()?;
    Ok(tableau.extract_solution(lp))
}

/// Like [`solve`], but when the optimum is not unique the reported point is
/// the **lexicographically smallest** optimal vertex (smallest `x_1`, then
/// smallest `x_2` among those, and so on). That canonical choice is a
/// property of the program alone — not of the pivot path — which is what
/// makes warm-started re-solves ([`crate::warm`]) bitwise-identical to cold
/// ones even on degenerate programs with whole optimal faces. The objective
/// value is identical to [`solve`]'s (optimal values are unique).
///
/// ```
/// use projtile_arith::int;
/// use projtile_lp::{solve_canonical, Constraint, LinearProgram, Relation};
///
/// // max x + y st x + y ≤ 1 has a whole optimal edge; the canonical answer
/// // is its lex-min vertex (0, 1), no matter how the solver pivoted.
/// let mut lp = LinearProgram::maximize(vec![int(1), int(1)]);
/// lp.add_constraint(Constraint::new(vec![int(1), int(1)], Relation::Le, int(1)));
/// let sol = solve_canonical(&lp).unwrap();
/// assert_eq!(sol.values, vec![int(0), int(1)]);
/// ```
pub fn solve_canonical(lp: &LinearProgram) -> Result<Solution, LpError> {
    lp.validate()?;
    let mut tableau = Tableau::build(lp);
    tableau.phase_one()?;
    tableau.phase_two()?;
    tableau.canonicalize_vertex();
    Ok(tableau.extract_solution(lp))
}

/// Internal simplex tableau.
///
/// Shared with the warm-start layer ([`crate::warm`]), which re-enters an
/// optimal tableau through [`Tableau::reinstall_rhs`] + [`Tableau::dual_iterate`]
/// instead of rebuilding it from scratch.
pub(crate) struct Tableau {
    /// Constraint rows; each row has `num_cols + 1` entries (rhs last).
    pub(crate) rows: Vec<Vec<Rational>>,
    /// Objective row in the `z - c·x = 0` convention (rhs entry = objective value).
    pub(crate) obj: Vec<Rational>,
    /// Basic variable (column index) for each row.
    pub(crate) basis: Vec<usize>,
    /// Number of structural variables.
    num_structural: usize,
    /// Total number of variable columns (structural + slack + artificial).
    pub(crate) num_cols: usize,
    /// Column indices of artificial variables.
    pub(crate) artificial_cols: Vec<usize>,
    /// Objective coefficients of the original problem, negated if minimizing
    /// (so the tableau always maximizes).
    max_costs: Vec<Rational>,
    /// Per original constraint: `true` iff the row was negated at build time
    /// to make its right-hand side non-negative. A replacement rhs must be
    /// negated the same way before entering the stored system.
    pub(crate) row_negated: Vec<bool>,
    /// Per original constraint `k`: the column that held the identity vector
    /// `e_k` when the tableau was built (the slack of a `<=` row, the
    /// artificial of a `>=`/`==` row). Reading those columns of the current
    /// tableau yields `B⁻¹` — the basis inverse — which is what lets a new
    /// right-hand side be installed without refactorizing.
    pub(crate) id_cols: Vec<usize>,
    /// Set if [`Tableau::drive_out_artificials`] removed redundant rows; the
    /// original-constraint-to-row mapping is then lost and the tableau cannot
    /// be re-entered with a different right-hand side.
    pub(crate) rows_removed: bool,
    /// The right-hand side (in the original constraints' orientation) the
    /// tableau currently represents; lets [`Tableau::reinstall_rhs`] apply
    /// only the *delta* of a new rhs.
    current_rhs: Vec<Rational>,
    /// `is_artificial[j]` iff column `j` is an artificial variable
    /// (precomputed from `artificial_cols` to keep the hot re-entry loops
    /// allocation-free).
    is_artificial: Vec<bool>,
}

impl Tableau {
    pub(crate) fn build(lp: &LinearProgram) -> Tableau {
        let n = lp.num_vars();
        let m = lp.num_constraints();

        // Normalize rows to have non-negative right-hand sides.
        let mut norm: Vec<(Vec<Rational>, Relation, Rational)> = Vec::with_capacity(m);
        let mut row_negated = Vec::with_capacity(m);
        for c in &lp.constraints {
            if c.rhs.is_negative() {
                let coeffs: Vec<Rational> = c.coeffs.iter().map(|v| -v).collect();
                let relation = match c.relation {
                    Relation::Le => Relation::Ge,
                    Relation::Ge => Relation::Le,
                    Relation::Eq => Relation::Eq,
                };
                norm.push((coeffs, relation, -&c.rhs));
                row_negated.push(true);
            } else {
                norm.push((c.coeffs.clone(), c.relation, c.rhs.clone()));
                row_negated.push(false);
            }
        }

        // Count slack/surplus and artificial columns.
        let num_slack = norm.iter().filter(|(_, r, _)| *r != Relation::Eq).count();
        let num_artificial = norm.iter().filter(|(_, r, _)| *r != Relation::Le).count();
        let num_cols = n + num_slack + num_artificial;

        let mut rows = Vec::with_capacity(m);
        let mut basis = Vec::with_capacity(m);
        let mut artificial_cols = Vec::with_capacity(num_artificial);
        let mut id_cols = Vec::with_capacity(m);
        let mut next_slack = n;
        let mut next_artificial = n + num_slack;

        for (coeffs, relation, rhs) in &norm {
            let mut row = vec![Rational::zero(); num_cols + 1];
            row[..n].clone_from_slice(coeffs);
            row[num_cols] = rhs.clone();
            match relation {
                Relation::Le => {
                    row[next_slack] = Rational::one();
                    basis.push(next_slack);
                    id_cols.push(next_slack);
                    next_slack += 1;
                }
                Relation::Ge => {
                    row[next_slack] = -Rational::one();
                    next_slack += 1;
                    row[next_artificial] = Rational::one();
                    basis.push(next_artificial);
                    id_cols.push(next_artificial);
                    artificial_cols.push(next_artificial);
                    next_artificial += 1;
                }
                Relation::Eq => {
                    row[next_artificial] = Rational::one();
                    basis.push(next_artificial);
                    id_cols.push(next_artificial);
                    artificial_cols.push(next_artificial);
                    next_artificial += 1;
                }
            }
            rows.push(row);
        }

        let max_costs: Vec<Rational> = match lp.objective {
            Objective::Maximize => lp.costs.clone(),
            Objective::Minimize => lp.costs.iter().map(|c| -c).collect(),
        };

        let mut is_artificial = vec![false; num_cols];
        for &a in &artificial_cols {
            is_artificial[a] = true;
        }

        Tableau {
            rows,
            obj: vec![Rational::zero(); num_cols + 1],
            basis,
            num_structural: n,
            num_cols,
            artificial_cols,
            max_costs,
            row_negated,
            id_cols,
            rows_removed: false,
            current_rhs: lp.constraints.iter().map(|c| c.rhs.clone()).collect(),
            is_artificial,
        }
    }

    /// Installs an objective row for maximizing `costs · x` (costs indexed by
    /// column; missing columns have zero cost) and canonicalizes it against
    /// the current basis.
    fn set_objective(&mut self, costs: &[Rational]) {
        self.obj.clear();
        self.obj.resize(self.num_cols + 1, Rational::zero());
        for (j, c) in costs.iter().enumerate() {
            if !c.is_zero() {
                self.obj[j] = -c;
            }
        }
        // Split borrows: the objective row and the constraint rows are
        // disjoint fields, so no row needs to be cloned.
        let Tableau {
            obj, rows, basis, ..
        } = self;
        for (i, &b) in basis.iter().enumerate() {
            if obj[b].is_zero() {
                continue;
            }
            // The basic column of row i is exactly 1, so obj[b] lands on
            // exactly zero; taking it out up front keeps the loop disjoint.
            let factor = std::mem::replace(&mut obj[b], Rational::zero());
            for (j, r) in rows[i].iter().enumerate() {
                if j != b && !r.is_zero() {
                    obj[j].sub_mul_assign(&factor, r);
                }
            }
        }
    }

    fn pivot(&mut self, row: usize, col: usize) {
        // Take the pivot row out of the tableau: this both avoids cloning it
        // (the buffer is moved, not copied) and lets every other row borrow
        // it while being updated.
        let mut pivot_row = std::mem::take(&mut self.rows[row]);

        // Normalize the pivot row; its pivot entry becomes exactly 1.
        let pivot = std::mem::replace(&mut pivot_row[col], Rational::one());
        debug_assert!(!pivot.is_zero());
        let inv = pivot.recip();
        if !inv.is_one() {
            for (j, entry) in pivot_row.iter_mut().enumerate() {
                if j != col && !entry.is_zero() {
                    *entry *= &inv;
                }
            }
        }

        // Columns (including the rhs) where the pivot row is nonzero: every
        // other column of the tableau is untouched by this pivot and is
        // skipped wholesale below.
        let nonzero: Vec<usize> = pivot_row
            .iter()
            .enumerate()
            .filter(|&(j, v)| j != col && !v.is_zero())
            .map(|(j, _)| j)
            .collect();

        // Eliminate the pivot column from every other row and the objective.
        // Each touched entry pays a single fused `x -= factor * p` update;
        // the pivot-column entry itself lands on exactly zero (the pivot row
        // has a 1 there), so it is written directly.
        for (i, r) in self.rows.iter_mut().enumerate() {
            if i == row || r[col].is_zero() {
                continue;
            }
            let factor = std::mem::replace(&mut r[col], Rational::zero());
            for &j in &nonzero {
                r[j].sub_mul_assign(&factor, &pivot_row[j]);
            }
        }
        if !self.obj[col].is_zero() {
            let factor = std::mem::replace(&mut self.obj[col], Rational::zero());
            for &j in &nonzero {
                self.obj[j].sub_mul_assign(&factor, &pivot_row[j]);
            }
        }

        self.rows[row] = pivot_row;
        self.basis[row] = col;
    }

    /// Runs simplex iterations until optimality or unboundedness, using
    /// Bland's rule. Columns in `forbidden` may never enter the basis.
    fn iterate(&mut self, forbidden: &[bool]) -> Result<(), LpError> {
        loop {
            // Entering column: smallest index with negative reduced cost.
            let entering = (0..self.num_cols).find(|&j| !forbidden[j] && self.obj[j].is_negative());
            let Some(col) = entering else {
                return Ok(());
            };
            // Leaving row: minimum ratio test, ties broken by smallest basic
            // index. `cmp_div` compares rhs_i/a_i against rhs_b/a_b by cross
            // multiplication, so no quotient is ever materialized.
            let mut best: Option<usize> = None;
            for i in 0..self.rows.len() {
                if !self.rows[i][col].is_positive() {
                    continue;
                }
                best = Some(match best {
                    None => i,
                    Some(b) => {
                        let ord = Rational::cmp_div(
                            &self.rows[i][self.num_cols],
                            &self.rows[i][col],
                            &self.rows[b][self.num_cols],
                            &self.rows[b][col],
                        );
                        match ord {
                            std::cmp::Ordering::Less => i,
                            std::cmp::Ordering::Equal if self.basis[i] < self.basis[b] => i,
                            _ => b,
                        }
                    }
                });
            }
            let Some(row) = best else {
                return Err(LpError::Unbounded);
            };
            self.pivot(row, col);
        }
    }

    pub(crate) fn phase_one(&mut self) -> Result<(), LpError> {
        if self.artificial_cols.is_empty() {
            return Ok(());
        }
        // Maximize -(sum of artificials).
        let mut costs = vec![Rational::zero(); self.num_cols];
        for &a in &self.artificial_cols {
            costs[a] = -Rational::one();
        }
        self.set_objective(&costs);
        let forbidden = vec![false; self.num_cols];
        self.iterate(&forbidden)?;
        if self.objective_value().is_negative() {
            return Err(LpError::Infeasible);
        }
        self.drive_out_artificials();
        Ok(())
    }

    /// After phase 1, pivots any artificial variable still in the basis (at
    /// value zero) out of it, or drops its row if it is entirely redundant.
    fn drive_out_artificials(&mut self) {
        let is_artificial = |col: usize, arts: &[usize]| arts.contains(&col);
        let arts = self.artificial_cols.clone();
        let mut row_idx = 0;
        while row_idx < self.rows.len() {
            if is_artificial(self.basis[row_idx], &arts) {
                // Find any non-artificial column with a nonzero entry.
                let col = (0..self.num_cols)
                    .filter(|j| !is_artificial(*j, &arts))
                    .find(|&j| !self.rows[row_idx][j].is_zero());
                match col {
                    Some(c) => {
                        self.pivot(row_idx, c);
                        row_idx += 1;
                    }
                    None => {
                        // Redundant row: every real coefficient is zero.
                        self.rows.remove(row_idx);
                        self.basis.remove(row_idx);
                        self.rows_removed = true;
                    }
                }
            } else {
                row_idx += 1;
            }
        }
    }

    pub(crate) fn phase_two(&mut self) -> Result<(), LpError> {
        let mut costs = vec![Rational::zero(); self.num_cols];
        costs[..self.num_structural].clone_from_slice(&self.max_costs);
        self.set_objective(&costs);
        let mut forbidden = vec![false; self.num_cols];
        for &a in &self.artificial_cols {
            forbidden[a] = true;
        }
        self.iterate(&forbidden)
    }

    fn structural_values(&self) -> Vec<Rational> {
        let mut values = vec![Rational::zero(); self.num_structural];
        for (i, &b) in self.basis.iter().enumerate() {
            if b < self.num_structural {
                values[b] = self.rows[i][self.num_cols].clone();
            }
        }
        values
    }

    fn objective_value(&self) -> Rational {
        self.obj[self.num_cols].clone()
    }

    /// Reads the optimal objective value off an optimal tableau (in the
    /// problem's own sense) without materializing the solution vector.
    pub(crate) fn extract_value(&self, lp: &LinearProgram) -> Rational {
        let raw = self.objective_value();
        match lp.objective {
            Objective::Maximize => raw,
            Objective::Minimize => -raw,
        }
    }

    /// Reads the optimal [`Solution`] off an optimal tableau, converting the
    /// internal always-maximize objective back to the problem's own sense.
    pub(crate) fn extract_solution(&self, lp: &LinearProgram) -> Solution {
        let values = self.structural_values();
        let raw = self.objective_value();
        let objective_value = match lp.objective {
            Objective::Maximize => raw,
            Objective::Minimize => -raw,
        };
        debug_assert!(
            lp.is_feasible(&values),
            "simplex returned an infeasible point"
        );
        debug_assert_eq!(lp.objective_at(&values), objective_value);
        Solution {
            objective_value,
            values,
        }
    }

    /// Replaces the stored right-hand side with `rhs` (given in the original
    /// constraints' orientation) without changing the basis: for each changed
    /// entry `Δb_k`, the basic values gain `Δb'_k · B⁻¹e_k` and the objective
    /// value gains `Δb'_k · y_k`, both read off the identity-origin column of
    /// constraint `k` in the current tableau — `O(m)` per **changed** entry,
    /// so single-row sweeps (Gray-code subsets, parametric rays) pay almost
    /// nothing. The basis stays dual feasible (reduced costs do not depend on
    /// the rhs), but basic values may turn negative;
    /// [`Tableau::dual_iterate`] restores primal feasibility.
    ///
    /// Must not be called when [`Tableau::rows_removed`] is set.
    pub(crate) fn reinstall_rhs(&mut self, lp: &LinearProgram) {
        debug_assert!(!self.rows_removed, "row mapping lost; cannot re-enter");
        debug_assert_eq!(lp.constraints.len(), self.id_cols.len());
        for (k, new_b) in lp.constraints.iter().map(|c| &c.rhs).enumerate() {
            if *new_b == self.current_rhs[k] {
                continue;
            }
            // Δb in the stored (sign-normalized) orientation.
            let mut delta = new_b - &self.current_rhs[k];
            if self.row_negated[k] {
                delta = -delta;
            }
            let col = self.id_cols[k];
            for row in &mut self.rows {
                // rhs_i += Δb'_k · B⁻¹[i][k]
                let (vars, rhs_cell) = row.split_at_mut(self.num_cols);
                if !vars[col].is_zero() {
                    rhs_cell[0].add_mul_assign(&delta, &vars[col]);
                }
            }
            let (vars, z_cell) = self.obj.split_at_mut(self.num_cols);
            if !vars[col].is_zero() {
                // z += Δb'_k · y_k, with y_k read off the identity-origin
                // column (whose original cost is zero in phase 2).
                z_cell[0].add_mul_assign(&delta, &vars[col]);
            }
            self.current_rhs[k] = new_b.clone();
        }
    }

    /// Dual simplex with Bland-style anti-cycling: starting from a dual
    /// feasible basis (all reduced costs non-negative), pivots until every
    /// basic value is non-negative again.
    ///
    /// Leaving row: the infeasible row whose basic variable has the smallest
    /// index. Entering column: among non-artificial columns with a negative
    /// entry in that row, the one minimizing `obj[j] / -row[j]` (ties broken
    /// by smallest column index), which preserves dual feasibility. A row
    /// with a negative rhs and no admissible entering column certifies
    /// infeasibility.
    pub(crate) fn dual_iterate(&mut self) -> Result<(), LpError> {
        loop {
            let leaving = (0..self.rows.len())
                .filter(|&i| self.rows[i][self.num_cols].is_negative())
                .min_by_key(|&i| self.basis[i]);
            let Some(row) = leaving else {
                return Ok(());
            };
            let mut best: Option<(usize, Rational)> = None;
            for j in 0..self.num_cols {
                if self.is_artificial[j] || !self.rows[row][j].is_negative() {
                    continue;
                }
                let denom = -&self.rows[row][j];
                best = Some(match best {
                    None => (j, denom),
                    Some((b, bdenom)) => {
                        // obj[j]/denom vs obj[b]/bdenom, both denominators > 0.
                        let ord = Rational::cmp_div(&self.obj[j], &denom, &self.obj[b], &bdenom);
                        if ord == std::cmp::Ordering::Less {
                            (j, denom)
                        } else {
                            (b, bdenom)
                        }
                    }
                });
            }
            let Some((col, _)) = best else {
                return Err(LpError::Infeasible);
            };
            self.pivot(row, col);
        }
    }

    /// Reads the exact right-hand-side sensitivity of the current (optimal)
    /// basis off the tableau, in the *original* constraints' orientation and
    /// the problem's own objective sense:
    ///
    /// * `dual_prices[k]` is `∂v/∂b_k` for this basis — the rate at which the
    ///   optimal value changes per unit of right-hand side `k` (for a
    ///   minimization problem the tableau's internal always-maximize value is
    ///   negated, like in [`Tableau::extract_value`]);
    /// * `basis_rows[i]` holds the current basic value of tableau row `i`
    ///   (non-negative at an optimal tableau) together with the row of
    ///   `B⁻¹` mapping original-orientation rhs deltas to that basic value:
    ///   `x_i(b) = value_i + Σ_k binv_i[k]·(b_k − b_k^current)`.
    ///
    /// Both are read off the identity-origin columns ([`Tableau::id_cols`]),
    /// exactly like [`Tableau::reinstall_rhs`] applies rhs deltas — this is
    /// the data the multiparametric analysis ([`crate::mplp`]) turns into
    /// critical regions and gradients.
    ///
    /// Must not be called when [`Tableau::rows_removed`] is set (the
    /// constraint-to-row mapping is lost).
    pub(crate) fn rhs_sensitivity(
        &self,
        lp: &LinearProgram,
    ) -> (Vec<Rational>, Vec<crate::warm::BasisRow>) {
        debug_assert!(!self.rows_removed, "row mapping lost; no sensitivity");
        let m = lp.num_constraints();
        debug_assert_eq!(m, self.id_cols.len());
        let obj_sign_negated = lp.objective == Objective::Minimize;
        let mut dual_prices = Vec::with_capacity(m);
        for k in 0..m {
            let mut y = self.obj[self.id_cols[k]].clone();
            if self.row_negated[k] != obj_sign_negated {
                y = -y;
            }
            dual_prices.push(y);
        }
        let basis_rows = self
            .rows
            .iter()
            .map(|row| crate::warm::BasisRow {
                value: row[self.num_cols].clone(),
                binv: (0..m)
                    .map(|k| {
                        let v = &row[self.id_cols[k]];
                        if self.row_negated[k] {
                            -v
                        } else {
                            v.clone()
                        }
                    })
                    .collect(),
            })
            .collect();
        (dual_prices, basis_rows)
    }

    /// Moves the (already optimal) tableau to the **lexicographically
    /// smallest optimal vertex**: the optimum minimizing `x_1`, then `x_2`
    /// among those, and so on over the structural variables.
    ///
    /// Why this is path-independent: expanding the objective around any
    /// optimal basis gives `c·x = v* − Σ_j ρ_j x_j` for every feasible `x`,
    /// so the optimal face is exactly `{x feasible : x_j = 0 for every
    /// column with reduced cost ρ_j > 0}` — the same set no matter which
    /// optimal basis produced the `ρ`. Freezing the positive-reduced-cost
    /// columns out of the candidate set and minimizing `x_ℓ` level by level
    /// (freezing each level's positive-reduced-cost columns in turn) is
    /// therefore a sequence of *global* optimizations over faces determined
    /// by the program alone; after the last level the face is the single
    /// lex-min vertex. Entering columns always have a zero reduced cost in
    /// every earlier objective, so those rows — including the primary
    /// objective row, which is saved and restored — are untouched by the
    /// pivots, and the objective value is exactly preserved.
    ///
    /// Cost: when the optimum is already certified unique this is a single
    /// scan; otherwise one restricted mini-optimization per structural
    /// variable, each typically a handful of pivots on the final tableau.
    // lint: allow(L008) expect pins basis consistency maintained by every pivot
    pub(crate) fn canonicalize_vertex(&mut self) {
        // Columns that may never enter: artificials, plus every column with a
        // strictly positive reduced cost in the primary (or any completed
        // level's) objective row.
        let mut forbidden = self.is_artificial.clone();
        for (f, rc) in forbidden.iter_mut().zip(&self.obj) {
            *f = *f || rc.is_positive();
        }
        let mut basic = vec![false; self.num_cols];
        for &b in &self.basis {
            basic[b] = true;
        }
        // Fast path: every non-basic, non-artificial column has a strictly
        // positive reduced cost, so the optimum is unique and already lex-min.
        if (0..self.num_cols).all(|j| basic[j] || forbidden[j]) {
            return;
        }
        let primary_obj = std::mem::take(&mut self.obj);
        for level in 0..self.num_structural {
            if forbidden[level] {
                // x_level is zero on the whole remaining face: its own
                // reduced cost was positive at some earlier level.
                continue;
            }
            if !basic[level] {
                // x_level is non-basic, i.e. already at its minimum (zero);
                // enforcing x_level = 0 on the remaining face is exactly
                // "never let this column enter" — no optimization needed.
                forbidden[level] = true;
                continue;
            }
            // No admissible entering column at all: the vertex cannot move,
            // so every remaining coordinate is already minimal.
            if (0..self.num_cols).all(|j| basic[j] || forbidden[j]) {
                break;
            }
            // Maximize -x_level over the remaining face. With x_level basic
            // in row i, the canonicalized objective row for cost -e_level is
            // simply the negated row i (zero in the basic column itself) —
            // no general elimination pass needed.
            let row = self
                .basis
                .iter()
                .position(|&b| b == level)
                .expect("basic variable has a row");
            self.obj.clear();
            self.obj.extend(self.rows[row].iter().map(|v| -v));
            self.obj[level] = Rational::zero();
            self.iterate(&forbidden)
                .expect("minimizing a non-negative variable cannot be unbounded");
            basic.fill(false);
            for &b in &self.basis {
                basic[b] = true;
            }
            for (f, rc) in forbidden.iter_mut().zip(&self.obj) {
                *f = *f || rc.is_positive();
            }
        }
        // The primary objective row is still canonical for the final basis:
        // every pivot's entering column had a zero primary reduced cost, so
        // no pivot would have changed it.
        self.obj = primary_obj;
    }
}

/// Verifies that `candidate` is an optimal solution of `lp` by checking
/// feasibility and comparing the objective value against a fresh solve.
/// Useful in tests for validating hand-derived closed forms.
pub fn verify_optimal(lp: &LinearProgram, candidate: &[Rational]) -> Result<bool, LpError> {
    if !lp.is_feasible(candidate) {
        return Ok(false);
    }
    let sol = solve(lp)?;
    Ok(dot(&lp.costs, candidate) == sol.objective_value)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::Constraint;
    use projtile_arith::{int, ratio};

    fn le(coeffs: Vec<projtile_arith::Rational>, rhs: projtile_arith::Rational) -> Constraint {
        Constraint::new(coeffs, Relation::Le, rhs)
    }

    fn ge(coeffs: Vec<projtile_arith::Rational>, rhs: projtile_arith::Rational) -> Constraint {
        Constraint::new(coeffs, Relation::Ge, rhs)
    }

    #[test]
    fn simple_max_le() {
        // max x + y st x <= 2, y <= 3, x + y <= 4 -> 4
        let mut lp = LinearProgram::maximize(vec![int(1), int(1)]);
        lp.add_constraint(le(vec![int(1), int(0)], int(2)));
        lp.add_constraint(le(vec![int(0), int(1)], int(3)));
        lp.add_constraint(le(vec![int(1), int(1)], int(4)));
        let sol = solve(&lp).unwrap();
        assert_eq!(sol.objective_value, int(4));
        assert!(lp.is_feasible(&sol.values));
    }

    #[test]
    fn simple_min_ge() {
        // min 2x + 3y st x + y >= 4, x >= 1 -> x=4,y=0 cost 8? check: cost(4,0)=8, cost(1,3)=11 -> 8
        let mut lp = LinearProgram::minimize(vec![int(2), int(3)]);
        lp.add_constraint(ge(vec![int(1), int(1)], int(4)));
        lp.add_constraint(ge(vec![int(1), int(0)], int(1)));
        let sol = solve(&lp).unwrap();
        assert_eq!(sol.objective_value, int(8));
        assert_eq!(sol.values, vec![int(4), int(0)]);
    }

    #[test]
    fn equality_constraints() {
        // max x + 2y st x + y == 3, y <= 2 -> x=1, y=2, obj 5
        let mut lp = LinearProgram::maximize(vec![int(1), int(2)]);
        lp.add_constraint(Constraint::new(vec![int(1), int(1)], Relation::Eq, int(3)));
        lp.add_constraint(le(vec![int(0), int(1)], int(2)));
        let sol = solve(&lp).unwrap();
        assert_eq!(sol.objective_value, int(5));
        assert_eq!(sol.values, vec![int(1), int(2)]);
    }

    #[test]
    fn detects_infeasible() {
        let mut lp = LinearProgram::maximize(vec![int(1)]);
        lp.add_constraint(le(vec![int(1)], int(1)));
        lp.add_constraint(ge(vec![int(1)], int(2)));
        assert_eq!(solve(&lp), Err(LpError::Infeasible));
    }

    #[test]
    fn detects_unbounded() {
        let mut lp = LinearProgram::maximize(vec![int(1), int(1)]);
        lp.add_constraint(ge(vec![int(1), int(0)], int(1)));
        assert_eq!(solve(&lp), Err(LpError::Unbounded));
    }

    #[test]
    fn no_constraints() {
        // max -x -> 0 at x=0; max x -> unbounded.
        let lp = LinearProgram::maximize(vec![int(-1)]);
        assert_eq!(solve(&lp).unwrap().objective_value, int(0));
        let lp2 = LinearProgram::maximize(vec![int(1)]);
        assert_eq!(solve(&lp2), Err(LpError::Unbounded));
    }

    #[test]
    fn negative_rhs_handled() {
        // min x st -x <= -3  (i.e. x >= 3)
        let mut lp = LinearProgram::minimize(vec![int(1)]);
        lp.add_constraint(le(vec![int(-1)], int(-3)));
        let sol = solve(&lp).unwrap();
        assert_eq!(sol.objective_value, int(3));
    }

    #[test]
    fn fractional_optimum_hbl_matmul() {
        // The matmul HBL LP: min s1+s2+s3 st s1+s2>=1, s2+s3>=1, s1+s3>=1.
        let mut lp = LinearProgram::minimize(vec![int(1), int(1), int(1)]);
        lp.add_constraint(ge(vec![int(1), int(1), int(0)], int(1)));
        lp.add_constraint(ge(vec![int(0), int(1), int(1)], int(1)));
        lp.add_constraint(ge(vec![int(1), int(0), int(1)], int(1)));
        let sol = solve(&lp).unwrap();
        assert_eq!(sol.objective_value, ratio(3, 2));
        assert_eq!(sol.values, vec![ratio(1, 2), ratio(1, 2), ratio(1, 2)]);
    }

    #[test]
    fn tiling_lp_matmul_small_l3() {
        // LP (6.3) of the paper: max l1+l2+l3 st l1+l3<=1, l1+l2<=1, l2+l3<=1, l3<=beta3.
        // With beta3 = 1/4 the optimum is 1 + 1/4.
        let beta3 = ratio(1, 4);
        let mut lp = LinearProgram::maximize(vec![int(1), int(1), int(1)]);
        lp.add_constraint(le(vec![int(1), int(0), int(1)], int(1)));
        lp.add_constraint(le(vec![int(1), int(1), int(0)], int(1)));
        lp.add_constraint(le(vec![int(0), int(1), int(1)], int(1)));
        lp.add_constraint(le(vec![int(0), int(0), int(1)], beta3.clone()));
        let sol = solve(&lp).unwrap();
        assert_eq!(sol.objective_value, &int(1) + &beta3);
        // With beta3 = 3/4 >= 1/2 the classical 3/2 optimum is retained.
        let mut lp2 = LinearProgram::maximize(vec![int(1), int(1), int(1)]);
        lp2.add_constraint(le(vec![int(1), int(0), int(1)], int(1)));
        lp2.add_constraint(le(vec![int(1), int(1), int(0)], int(1)));
        lp2.add_constraint(le(vec![int(0), int(1), int(1)], int(1)));
        lp2.add_constraint(le(vec![int(0), int(0), int(1)], ratio(3, 4)));
        assert_eq!(solve(&lp2).unwrap().objective_value, ratio(3, 2));
    }

    #[test]
    fn degenerate_lp_terminates() {
        // Highly degenerate: several redundant constraints through the optimum.
        let mut lp = LinearProgram::maximize(vec![int(1), int(1)]);
        for _ in 0..5 {
            lp.add_constraint(le(vec![int(1), int(1)], int(1)));
        }
        lp.add_constraint(le(vec![int(1), int(0)], int(1)));
        lp.add_constraint(le(vec![int(0), int(1)], int(1)));
        lp.add_constraint(Constraint::new(vec![int(1), int(-1)], Relation::Eq, int(0)));
        let sol = solve(&lp).unwrap();
        assert_eq!(sol.objective_value, int(1));
    }

    #[test]
    fn redundant_equality_rows_dropped() {
        // x + y == 2 stated twice plus its double.
        let mut lp = LinearProgram::maximize(vec![int(1), int(0)]);
        lp.add_constraint(Constraint::new(vec![int(1), int(1)], Relation::Eq, int(2)));
        lp.add_constraint(Constraint::new(vec![int(1), int(1)], Relation::Eq, int(2)));
        lp.add_constraint(Constraint::new(vec![int(2), int(2)], Relation::Eq, int(4)));
        let sol = solve(&lp).unwrap();
        assert_eq!(sol.objective_value, int(2));
    }

    #[test]
    fn verify_optimal_works() {
        let mut lp = LinearProgram::maximize(vec![int(1), int(1)]);
        lp.add_constraint(le(vec![int(1), int(1)], int(1)));
        assert!(verify_optimal(&lp, &[ratio(1, 2), ratio(1, 2)]).unwrap());
        assert!(verify_optimal(&lp, &[int(1), int(0)]).unwrap());
        assert!(!verify_optimal(&lp, &[int(0), int(0)]).unwrap());
        assert!(!verify_optimal(&lp, &[int(2), int(0)]).unwrap());
    }

    #[test]
    fn malformed_rejected() {
        let mut lp = LinearProgram::maximize(vec![int(1), int(1)]);
        lp.add_constraint(le(vec![int(1)], int(1)));
        assert!(matches!(solve(&lp), Err(LpError::Malformed(_))));
    }
}
