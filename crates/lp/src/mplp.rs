//! Multiparametric right-hand-side analysis over a box of parameters.
//!
//! Section 7 of the paper observes that the optimal tile exponent is a
//! concave piecewise-linear function of *all* the log loop bounds
//! `β_1, …, β_d` simultaneously, and that a multiparametric LP solver can
//! recover its closed form. This module is that solver: given a base program,
//! a set of right-hand-side *directions* `d_1, …, d_p`, and a box
//! `Θ = [lo_1, hi_1] × ⋯ × [lo_p, hi_p]`, it computes the exact value
//! function
//!
//! ```text
//! f(θ) = opt( lp with rhs b + θ_1·d_1 + ⋯ + θ_p·d_p ),   θ ∈ Θ
//! ```
//!
//! as a list of **critical regions**: each optimal basis `B` of the program
//! yields an affine piece `f(θ) = c·θ + k` (its gradient is the basis' dual
//! prices contracted with the directions) that is exact on the rational
//! polyhedron where `B` stays primal feasible (`B⁻¹b(θ) ≥ 0` — one halfspace
//! per tableau row), and the pieces of all bases visited cover the box.
//!
//! # Algorithm
//!
//! The classical critical-region graph traversal, run entirely in exact
//! rational arithmetic:
//!
//! 1. solve the program at a seed point (box corners, plus a deterministic
//!    interior point) via [`SolverContext::solve_with_sensitivity`] and read
//!    the affine piece and region polyhedron off the optimal basis;
//! 2. for every facet of the region, find an interior point of the facet
//!    within the box (a tiny exact Chebyshev-style LP), step across it by
//!    half the distance to the nearest other constraint, and re-solve there —
//!    the warm context re-enters the **dual simplex** from the previous
//!    basis, so hopping to an adjacent region typically costs a pivot or two;
//! 3. repeat until no step lands outside every known region.
//!
//! Every probe ends at the canonical lex-min optimal vertex
//! ([`crate::solve_canonical`]'s tie-breaking), and the traversal itself is
//! deterministic (FIFO over exactly computed rational points), so the region
//! decomposition is reproducible run to run.
//!
//! # Exactness
//!
//! Each region's affine piece is `y_B · b(θ)` for the basis' dual vector
//! `y_B`, which is dual feasible for *every* θ (reduced costs do not depend
//! on the rhs). By weak duality the piece therefore bounds `f` everywhere —
//! from above for maximization, from below for minimization — and it equals
//! `f` on its own region. A concave (resp. convex) piecewise-linear function
//! is the pointwise minimum (resp. maximum) of its affine pieces, so
//! [`ValueSurface::value_at`] and the slicers evaluate the **envelope** of
//! the collected pieces: every evaluation is exact wherever the regions
//! cover, and never on the wrong side of the true optimum anywhere. The
//! differential tests pin 1-D slices of the surface bitwise against the
//! independent cold sweeps of [`crate::parametric`].

use std::collections::VecDeque;

use projtile_arith::Rational;
use serde::{Deserialize, Serialize};

use crate::parametric::{merge_collinear, ValueFunction};
use crate::problem::{Constraint, LinearProgram, Objective, Relation};
use crate::warm::{SensitivitySolution, SolverContext};
use crate::LpError;

/// Hard cap on the number of critical regions a single analysis may
/// enumerate; the programs of this workspace have at most a few dozen bases,
/// so hitting the cap indicates a malformed query (and is reported as such
/// rather than looping).
const REGION_BUDGET: usize = 4096;

/// An axis-aligned box of parameter vectors, `lo_k ≤ θ_k ≤ hi_k`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ParamBox {
    /// Lower corner.
    pub lo: Vec<Rational>,
    /// Upper corner (componentwise `≥ lo`).
    pub hi: Vec<Rational>,
}

impl ParamBox {
    /// Creates a box, rejecting mismatched or inverted corners.
    pub fn new(lo: Vec<Rational>, hi: Vec<Rational>) -> Result<ParamBox, LpError> {
        if lo.len() != hi.len() {
            return Err(LpError::Malformed(format!(
                "box corners have dimensions {} and {}",
                lo.len(),
                hi.len()
            )));
        }
        if lo.is_empty() {
            return Err(LpError::Malformed("empty parameter box".into()));
        }
        if lo.iter().zip(&hi).any(|(l, h)| l > h) {
            return Err(LpError::Malformed("box has lo > hi on some axis".into()));
        }
        Ok(ParamBox { lo, hi })
    }

    /// Number of parameters `p`.
    pub fn dim(&self) -> usize {
        self.lo.len()
    }

    /// `true` iff `theta` lies in the (closed) box.
    pub fn contains(&self, theta: &[Rational]) -> bool {
        theta.len() == self.dim()
            && theta
                .iter()
                .zip(self.lo.iter().zip(&self.hi))
                .all(|(t, (l, h))| t >= l && t <= h)
    }

    /// `true` iff the box is degenerate (a single point) along axis `k`.
    fn is_flat(&self, k: usize) -> bool {
        self.lo[k] == self.hi[k]
    }

    /// Deterministic seed points: every corner plus an off-center interior
    /// point (`lo + 5/13·(hi − lo)`, chosen away from the small-denominator
    /// rationals where degenerate breakpoints like `β = 1/2` live).
    fn seeds(&self) -> Vec<Vec<Rational>> {
        let p = self.dim();
        let mut out = Vec::new();
        if p <= 12 {
            for mask in 0u64..1 << p {
                let corner: Vec<Rational> = (0..p)
                    .map(|k| {
                        if mask >> k & 1 == 1 {
                            self.hi[k].clone()
                        } else {
                            self.lo[k].clone()
                        }
                    })
                    .collect();
                out.push(corner);
            }
        }
        let frac = projtile_arith::ratio(5, 13);
        out.push(
            (0..p)
                .map(|k| {
                    let mut v = self.lo[k].clone();
                    v.add_mul_assign(&frac, &(&self.hi[k] - &self.lo[k]));
                    v
                })
                .collect(),
        );
        out
    }
}

/// One affine piece `f(θ) = constant + gradient · θ` of a value surface.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct AffinePiece {
    /// `∂f/∂θ_k` on the piece — for a parametric tiling LP these are the
    /// paper's per-axis exponent sensitivities (e.g. `1` in the `1 + β_3`
    /// matmul regime and `0` in the `3/2` regime).
    pub gradient: Vec<Rational>,
    /// The constant term.
    pub constant: Rational,
}

impl AffinePiece {
    /// Evaluates the piece at `theta`.
    // lint: allow(L008) assert pins parameter arity, checked by ValueSurface::value_at before dispatch
    pub fn value_at(&self, theta: &[Rational]) -> Rational {
        assert_eq!(theta.len(), self.gradient.len(), "dimension mismatch");
        let mut v = self.constant.clone();
        for (g, t) in self.gradient.iter().zip(theta) {
            if !g.is_zero() && !t.is_zero() {
                v.add_mul_assign(g, t);
            }
        }
        v
    }

    /// Renders the piece as a human-readable closed form, e.g. `1 + β3` or
    /// `3/2`, with `names[k]` naming parameter `k`.
    // lint: allow(L008) assert_eq pins the documented names.len() == coeffs.len() precondition
    pub fn render(&self, names: &[&str]) -> String {
        assert_eq!(names.len(), self.gradient.len(), "one name per parameter");
        let mut out = String::new();
        if !self.constant.is_zero() {
            out.push_str(&self.constant.to_string());
        }
        for (g, name) in self.gradient.iter().zip(names) {
            if g.is_zero() {
                continue;
            }
            let mag = g.abs();
            if out.is_empty() {
                if g.is_negative() {
                    out.push('-');
                }
            } else {
                out.push_str(if g.is_negative() { " - " } else { " + " });
            }
            if !mag.is_one() {
                out.push_str(&mag.to_string());
                out.push('·');
            }
            out.push_str(name);
        }
        if out.is_empty() {
            out.push('0');
        }
        out
    }
}

/// A closed halfspace `normal · θ ≤ offset`, normalized so the first nonzero
/// normal entry has magnitude one.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct HalfSpace {
    /// Outward normal (nonzero).
    pub normal: Vec<Rational>,
    /// Right-hand side.
    pub offset: Rational,
}

impl HalfSpace {
    /// `true` iff `theta` satisfies the halfspace.
    pub fn admits(&self, theta: &[Rational]) -> bool {
        dot(&self.normal, theta) <= self.offset
    }

    /// Scales so the first nonzero normal entry has magnitude one (positive
    /// scaling preserves the inequality), giving every halfspace a canonical
    /// representative for deduplication and deterministic ordering.
    fn normalize(mut self) -> HalfSpace {
        if let Some(lead) = self.normal.iter().find(|c| !c.is_zero()) {
            let scale = lead.abs().recip();
            if !scale.is_one() {
                for c in &mut self.normal {
                    *c = &*c * &scale;
                }
                self.offset = &self.offset * &scale;
            }
        }
        self
    }

    /// `true` iff the halfspace holds on the entire box (its facet cannot
    /// intersect the box interior), so it carries no information about the
    /// region's shape inside the box.
    fn redundant_over(&self, domain: &ParamBox) -> bool {
        let mut max = Rational::zero();
        for (k, c) in self.normal.iter().enumerate() {
            if c.is_positive() {
                max.add_mul_assign(c, &domain.hi[k]);
            } else if c.is_negative() {
                max.add_mul_assign(c, &domain.lo[k]);
            }
        }
        max <= self.offset
    }
}

/// One critical region: an affine piece of the value function together with
/// the polyhedron (inside the analyzed box) on which its basis — and hence
/// the piece — is exact.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct CriticalRegion {
    /// The affine piece, exact on this region and a one-sided bound on the
    /// value function everywhere (see the module docs).
    pub piece: AffinePiece,
    /// The region's halfspaces (box constraints not repeated; halfspaces
    /// implied by the box alone are dropped). May still contain inequalities
    /// redundant with each other.
    pub halfspaces: Vec<HalfSpace>,
    /// The probe point that discovered the region (inside it by
    /// construction).
    pub witness: Vec<Rational>,
}

impl CriticalRegion {
    /// `true` iff `theta` satisfies every halfspace of the region (box
    /// membership is checked by the surface, not here).
    pub fn contains(&self, theta: &[Rational]) -> bool {
        self.halfspaces.iter().all(|h| h.admits(theta))
    }
}

/// The exact value function of a parametric LP over a box, decomposed into
/// critical regions. Produced by [`parametric_rhs_box`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ValueSurface {
    objective: Objective,
    domain: ParamBox,
    regions: Vec<CriticalRegion>,
}

impl ValueSurface {
    /// The analyzed parameter box.
    pub fn domain(&self) -> &ParamBox {
        &self.domain
    }

    /// The critical regions, in a canonical (deterministic) order.
    pub fn regions(&self) -> &[CriticalRegion] {
        &self.regions
    }

    /// Number of critical regions.
    pub fn num_regions(&self) -> usize {
        self.regions.len()
    }

    /// The same surface with its parameters renumbered: new parameter `k` is
    /// old parameter `order[k]` (an index permutation). Every coordinate
    /// vector — box corners, piece gradients, halfspace normals, witnesses —
    /// is permuted accordingly and the regions are re-sorted into their
    /// canonical order, so the result is the exact surface a caller that
    /// numbered the parameters in the permuted order would work with.
    ///
    /// # Panics
    /// Panics if `order` is not a permutation of `0..self.domain().dim()`.
    // lint: allow(L008) asserts pin the perm-is-a-permutation precondition from canonicalize
    pub fn permute_parameters(&self, order: &[usize]) -> ValueSurface {
        let p = self.domain.dim();
        assert_eq!(order.len(), p, "parameter permutation length mismatch");
        let mut seen = vec![false; p];
        for &i in order {
            assert!(i < p && !seen[i], "not a parameter permutation");
            seen[i] = true;
        }
        let permute =
            |v: &[Rational]| -> Vec<Rational> { order.iter().map(|&i| v[i].clone()).collect() };
        let domain = ParamBox {
            lo: permute(&self.domain.lo),
            hi: permute(&self.domain.hi),
        };
        let mut regions: Vec<CriticalRegion> = self
            .regions
            .iter()
            .map(|r| CriticalRegion {
                piece: AffinePiece {
                    gradient: permute(&r.piece.gradient),
                    constant: r.piece.constant.clone(),
                },
                halfspaces: r
                    .halfspaces
                    .iter()
                    .map(|h| HalfSpace {
                        normal: permute(&h.normal),
                        offset: h.offset.clone(),
                    })
                    .collect(),
                witness: permute(&r.witness),
            })
            .collect();
        regions.sort();
        ValueSurface {
            objective: self.objective,
            domain,
            regions,
        }
    }

    /// Checks that every coordinate vector in the surface — box corners,
    /// piece gradients, halfspace normals, region witnesses — has exactly
    /// `dim` entries, that the box is non-empty (`lo ≤ hi` per axis), and
    /// that at least one region is present.
    ///
    /// The serde derives construct surfaces field-by-field, bypassing the
    /// solver that normally guarantees these invariants, so restore paths
    /// must run this on untrusted documents before calling the
    /// assert-bearing consumers (`value_at`, `render`,
    /// `permute_parameters`).
    pub fn check_dims(&self, dim: usize) -> Result<(), String> {
        if self.domain.lo.len() != dim || self.domain.hi.len() != dim {
            return Err(format!("surface domain box is not {dim}-dimensional"));
        }
        if self
            .domain
            .lo
            .iter()
            .zip(&self.domain.hi)
            .any(|(l, h)| l > h)
        {
            return Err("surface domain box is empty (lo > hi)".into());
        }
        if self.regions.is_empty() {
            return Err("surface has no critical regions".into());
        }
        for (i, r) in self.regions.iter().enumerate() {
            if r.piece.gradient.len() != dim {
                return Err(format!(
                    "region {i} piece gradient is not {dim}-dimensional"
                ));
            }
            if r.witness.len() != dim {
                return Err(format!("region {i} witness is not {dim}-dimensional"));
            }
            if r.halfspaces.iter().any(|h| h.normal.len() != dim) {
                return Err(format!(
                    "region {i} has a halfspace normal that is not {dim}-dimensional"
                ));
            }
        }
        Ok(())
    }

    /// The distinct affine pieces of the surface, deduplicated and sorted.
    pub fn pieces(&self) -> Vec<&AffinePiece> {
        let mut pieces: Vec<&AffinePiece> = self.regions.iter().map(|r| &r.piece).collect();
        pieces.sort();
        pieces.dedup();
        pieces
    }

    /// The value function at `theta`: the envelope (min over pieces for a
    /// maximization program, max for a minimization) of every region's piece.
    ///
    /// # Panics
    /// Panics if `theta` lies outside the analyzed box (outside it the
    /// envelope is only a one-sided bound).
    // lint: allow(L008) asserts pin piece-cover and dimension invariants maintained by the mpLP solver
    pub fn value_at(&self, theta: &[Rational]) -> Rational {
        assert!(
            self.domain.contains(theta),
            "theta outside the analyzed box"
        );
        let values = self.regions.iter().map(|r| r.piece.value_at(theta));
        match self.objective {
            Objective::Maximize => values.min(),
            Objective::Minimize => values.max(),
        }
        .expect("a surface has at least one region")
    }

    /// A region containing `theta` (the first in canonical order), if any.
    /// On region boundaries several regions qualify; all of them agree on
    /// the value.
    pub fn region_at(&self, theta: &[Rational]) -> Option<&CriticalRegion> {
        if !self.domain.contains(theta) {
            return None;
        }
        self.regions.iter().find(|r| r.contains(theta))
    }

    /// The exact 1-D restriction obtained by varying parameter `axis` over
    /// its full box range while holding the remaining parameters at `at`
    /// (whose entry at `axis` is ignored): a [`ValueFunction`] over
    /// `θ_axis ∈ [lo_axis, hi_axis]`, bitwise-identical to what the 1-D sweep
    /// of [`crate::parametric`] computes along the same line.
    ///
    /// # Panics
    /// Panics if `axis` is out of range or `at` leaves the box on some other
    /// axis.
    pub fn slice_axis(&self, axis: usize, at: &[Rational]) -> ValueFunction {
        let p = self.domain.dim();
        assert!(axis < p, "axis out of range");
        assert_eq!(at.len(), p, "one coordinate per parameter");
        for (k, t) in at.iter().enumerate() {
            assert!(
                k == axis || (*t >= self.domain.lo[k] && *t <= self.domain.hi[k]),
                "slice point outside the analyzed box on axis {k}"
            );
        }
        let lines: Vec<(Rational, Rational)> = self
            .regions
            .iter()
            .map(|r| {
                let mut b = r.piece.constant.clone();
                for (k, (g, t)) in r.piece.gradient.iter().zip(at).enumerate() {
                    if k != axis && !g.is_zero() {
                        b.add_mul_assign(g, t);
                    }
                }
                (r.piece.gradient[axis].clone(), b)
            })
            .collect();
        envelope(
            &lines,
            &self.domain.lo[axis],
            &self.domain.hi[axis],
            self.objective,
        )
    }

    /// The exact restriction of the surface to the segment
    /// `θ(t) = from + t·(to − from)`, `t ∈ [0, 1]`, as a [`ValueFunction`]
    /// over `t`. Both endpoints must lie in the analyzed box (the box is
    /// convex, so the whole segment then does).
    pub fn slice_segment(&self, from: &[Rational], to: &[Rational]) -> ValueFunction {
        assert!(
            self.domain.contains(from) && self.domain.contains(to),
            "segment endpoints outside the analyzed box"
        );
        let lines: Vec<(Rational, Rational)> = self
            .regions
            .iter()
            .map(|r| {
                let mut slope = Rational::zero();
                for (g, (f, t)) in r.piece.gradient.iter().zip(from.iter().zip(to)) {
                    if !g.is_zero() {
                        slope.add_mul_assign(g, &(t - f));
                    }
                }
                (slope, r.piece.value_at(from))
            })
            .collect();
        envelope(&lines, &Rational::zero(), &Rational::one(), self.objective)
    }
}

/// Computes the exact value surface of `lp` with its right-hand side replaced
/// by `rhs + Σ_k θ_k·directions[k]` for `θ` over `domain`, hopping between
/// critical regions with warm dual-simplex re-entries.
///
/// Returns an error if the program is infeasible or unbounded anywhere on the
/// box, if a probe's basis cannot expose sensitivity data (phase 1 dropped
/// redundant rows), or if the query is malformed.
///
/// ```
/// use projtile_arith::{int, ratio};
/// use projtile_lp::{mplp, Constraint, LinearProgram, Relation};
///
/// // max x + y  st  x ≤ θ_1, y ≤ θ_2, x + y ≤ 1: the value surface over
/// // [0,1]² is min(θ_1 + θ_2, 1) — two affine pieces.
/// let mut lp = LinearProgram::maximize(vec![int(1), int(1)]);
/// lp.add_constraint(Constraint::new(vec![int(1), int(0)], Relation::Le, int(0)));
/// lp.add_constraint(Constraint::new(vec![int(0), int(1)], Relation::Le, int(0)));
/// lp.add_constraint(Constraint::new(vec![int(1), int(1)], Relation::Le, int(1)));
/// let directions = vec![
///     vec![int(1), int(0), int(0)],
///     vec![int(0), int(1), int(0)],
/// ];
/// let domain = mplp::ParamBox::new(vec![int(0); 2], vec![int(1); 2]).unwrap();
/// let surface = mplp::parametric_rhs_box(&lp, &directions, &domain).unwrap();
/// assert!(surface.pieces().len() >= 2);
/// assert_eq!(surface.value_at(&[ratio(1, 4), ratio(1, 4)]), ratio(1, 2));
/// assert_eq!(surface.value_at(&[int(1), ratio(3, 4)]), int(1));
/// ```
pub fn parametric_rhs_box(
    lp: &LinearProgram,
    directions: &[Vec<Rational>],
    domain: &ParamBox,
) -> Result<ValueSurface, LpError> {
    parametric_rhs_box_impl(lp, directions, domain, true)
}

/// [`parametric_rhs_box`] with every probe answered by an independent cold
/// solve instead of a warm dual-simplex re-entry. Retained as the
/// differential oracle for the warm path: the surfaces evaluate identically
/// everywhere on the box (the test suite pins values and slices against each
/// other and against the 1-D cold sweeps).
pub fn parametric_rhs_box_cold(
    lp: &LinearProgram,
    directions: &[Vec<Rational>],
    domain: &ParamBox,
) -> Result<ValueSurface, LpError> {
    parametric_rhs_box_impl(lp, directions, domain, false)
}

fn parametric_rhs_box_impl(
    lp: &LinearProgram,
    directions: &[Vec<Rational>],
    domain: &ParamBox,
    warm: bool,
) -> Result<ValueSurface, LpError> {
    let p = domain.dim();
    if directions.len() != p {
        return Err(LpError::Malformed(format!(
            "{} directions for a {}-dimensional box",
            directions.len(),
            p
        )));
    }
    for d in directions {
        if d.len() != lp.num_constraints() {
            return Err(LpError::Malformed(format!(
                "direction has {} entries but the program has {} constraints",
                d.len(),
                lp.num_constraints()
            )));
        }
    }
    lp.validate()?;

    let base_rhs: Vec<Rational> = lp.constraints.iter().map(|c| c.rhs.clone()).collect();
    let mut scratch = lp.clone();
    let mut ctx = SolverContext::new();
    let mut probe = |theta: &[Rational]| -> Result<SensitivitySolution, LpError> {
        for (i, c) in scratch.constraints.iter_mut().enumerate() {
            c.rhs = base_rhs[i].clone();
            for (dir, t) in directions.iter().zip(theta) {
                if !dir[i].is_zero() && !t.is_zero() {
                    c.rhs.add_mul_assign(&dir[i], t);
                }
            }
        }
        if !warm {
            ctx.reset();
        }
        ctx.solve_with_sensitivity(&scratch)
    };

    let mut queue: VecDeque<Vec<Rational>> = domain.seeds().into();
    let mut regions: Vec<CriticalRegion> = Vec::new();
    let mut discovered = 0usize;
    while let Some(theta) = queue.pop_front() {
        if regions.iter().any(|r| r.contains(&theta)) {
            continue;
        }
        discovered += 1;
        if discovered > REGION_BUDGET {
            return Err(LpError::Malformed(format!(
                "more than {REGION_BUDGET} critical regions; refusing the query"
            )));
        }
        let sens = probe(&theta)?;
        let region = extract_region(&sens, directions, &theta, domain);
        debug_assert!(region.contains(&theta), "region misses its own witness");
        for crossing in facet_crossings(&region, domain)? {
            queue.push_back(crossing);
        }
        regions.push(region);
    }
    regions.sort();
    Ok(ValueSurface {
        objective: lp.objective,
        domain: domain.clone(),
        regions,
    })
}

/// Builds the critical region of the basis that solved the probe at `theta`:
/// the affine piece from the dual prices, and one halfspace per basic row
/// whose value actually depends on `θ`.
fn extract_region(
    sens: &SensitivitySolution,
    directions: &[Vec<Rational>],
    theta: &[Rational],
    domain: &ParamBox,
) -> CriticalRegion {
    let p = directions.len();
    // Gradient: ∂f/∂θ_k = Σ_row directions[k][row] · y_row.
    let gradient: Vec<Rational> = directions
        .iter()
        .map(|dir| dot(dir, &sens.dual_prices))
        .collect();
    let mut constant = sens.solution.objective_value.clone();
    for (g, t) in gradient.iter().zip(theta) {
        if !g.is_zero() && !t.is_zero() {
            constant.sub_mul_assign(g, t);
        }
    }

    // Each basic row i is affine in θ: value_i + Σ_k c_ik·(θ_k − θ*_k) ≥ 0,
    // i.e. the halfspace −c_i·θ ≤ value_i − c_i·θ*.
    let mut halfspaces: Vec<HalfSpace> = Vec::new();
    for row in &sens.basis_rows {
        let coeffs: Vec<Rational> = directions.iter().map(|dir| dot(dir, &row.binv)).collect();
        if coeffs.iter().all(|c| c.is_zero()) {
            continue;
        }
        let mut offset = row.value.clone();
        let mut normal = Vec::with_capacity(p);
        for (c, t) in coeffs.into_iter().zip(theta) {
            if !c.is_zero() && !t.is_zero() {
                offset.sub_mul_assign(&c, t);
            }
            normal.push(-c);
        }
        let hs = HalfSpace { normal, offset }.normalize();
        if !hs.redundant_over(domain) {
            halfspaces.push(hs);
        }
    }
    halfspaces.sort();
    halfspaces.dedup();
    CriticalRegion {
        piece: AffinePiece { gradient, constant },
        halfspaces,
        witness: theta.to_vec(),
    }
}

/// For every facet of `region` that has a relative interior inside the box,
/// produces one point strictly across the facet (and strictly inside the box
/// and the region's other halfspaces), i.e. a witness for a neighbouring
/// region.
fn facet_crossings(
    region: &CriticalRegion,
    domain: &ParamBox,
) -> Result<Vec<Vec<Rational>>, LpError> {
    let mut out = Vec::new();
    for i in 0..region.halfspaces.len() {
        if let Some(point) = facet_crossing(region, i, domain)? {
            out.push(point);
        }
    }
    Ok(out)
}

/// A point just across facet `i` of `region`, or `None` when the facet has no
/// relative interior within the box (it lies on the box boundary, or the
/// region pinches to lower dimension there). Errors other than the expected
/// infeasibility of the margin LP propagate — silently skipping a facet
/// would leave a coverage gap the envelope cannot detect.
fn facet_crossing(
    region: &CriticalRegion,
    i: usize,
    domain: &ParamBox,
) -> Result<Option<Vec<Rational>>, LpError> {
    let p = domain.dim();
    let facet = &region.halfspaces[i];
    // Maximize the margin t over points of the facet: variables are
    // u = θ − lo (≥ 0 by the solver's convention) and t, with every other
    // halfspace and every non-flat box wall kept at distance ≥ t
    // (constraint-units margin; any positive margin serves).
    let mut lp = LinearProgram::maximize({
        let mut costs = vec![Rational::zero(); p + 1];
        costs[p] = Rational::one();
        costs
    });
    let shift = |normal: &[Rational], offset: &Rational| -> Rational {
        // offset − normal·lo: the rhs in u-coordinates.
        let mut rhs = offset.clone();
        for (c, l) in normal.iter().zip(&domain.lo) {
            if !c.is_zero() && !l.is_zero() {
                rhs.sub_mul_assign(c, l);
            }
        }
        rhs
    };
    let mut on_facet = facet.normal.clone();
    on_facet.push(Rational::zero());
    lp.add_constraint(Constraint::new(
        on_facet,
        Relation::Eq,
        shift(&facet.normal, &facet.offset),
    ));
    for (j, hs) in region.halfspaces.iter().enumerate() {
        if j == i {
            continue;
        }
        let mut coeffs = hs.normal.clone();
        coeffs.push(Rational::one());
        lp.add_constraint(Constraint::new(
            coeffs,
            Relation::Le,
            shift(&hs.normal, &hs.offset),
        ));
    }
    for k in 0..p {
        let mut coeffs = vec![Rational::zero(); p + 1];
        coeffs[k] = Rational::one();
        if domain.is_flat(k) {
            // Flat axis: the point is pinned; no margin is required (or
            // possible) against these walls.
            lp.add_constraint(Constraint::new(coeffs, Relation::Eq, Rational::zero()));
            continue;
        }
        // u_k + t ≤ hi_k − lo_k  and  t − u_k ≤ 0.
        coeffs[p] = Rational::one();
        lp.add_constraint(Constraint::new(
            coeffs.clone(),
            Relation::Le,
            &domain.hi[k] - &domain.lo[k],
        ));
        coeffs[k] = -Rational::one();
        lp.add_constraint(Constraint::new(coeffs, Relation::Le, Rational::zero()));
    }
    let sol = match crate::solve(&lp) {
        Ok(sol) => sol,
        Err(LpError::Infeasible) => return Ok(None),
        Err(e) => return Err(e),
    };
    let margin = &sol.values[p];
    if !margin.is_positive() {
        return Ok(None);
    }
    let anchor: Vec<Rational> = (0..p).map(|k| &domain.lo[k] + &sol.values[k]).collect();

    // Step direction: the facet normal restricted to non-flat axes (crossing
    // must not move along a flat axis). A facet whose normal lives entirely
    // on flat axes is constant over the box and was already dropped as
    // redundant or cannot reach this point with margin > 0.
    let dir: Vec<Rational> = (0..p)
        .map(|k| {
            if domain.is_flat(k) {
                Rational::zero()
            } else {
                facet.normal[k].clone()
            }
        })
        .collect();
    let advance = dot(&dir, &facet.normal);
    if !advance.is_positive() {
        return Ok(None);
    }

    // Largest step staying inside the box and the other halfspaces, halved.
    let mut limit: Option<Rational> = None;
    let mut cap = |bound: Rational| {
        debug_assert!(bound.is_positive());
        limit = Some(match limit.take() {
            None => bound,
            Some(old) => old.min(bound),
        });
    };
    for k in 0..p {
        if dir[k].is_positive() {
            cap(&(&domain.hi[k] - &anchor[k]) / &dir[k]);
        } else if dir[k].is_negative() {
            cap(&(&anchor[k] - &domain.lo[k]) / &-&dir[k]);
        }
    }
    for (j, hs) in region.halfspaces.iter().enumerate() {
        if j == i {
            continue;
        }
        let speed = dot(&hs.normal, &dir);
        if speed.is_positive() {
            cap(&(&hs.offset - &dot(&hs.normal, &anchor)) / &speed);
        }
    }
    let Some(limit) = limit else {
        return Ok(None);
    };
    let step = &limit / &Rational::from(2u32);
    Ok(Some(
        anchor
            .iter()
            .zip(&dir)
            .map(|(a, d)| {
                let mut v = a.clone();
                if !d.is_zero() {
                    v.add_mul_assign(&step, d);
                }
                v
            })
            .collect(),
    ))
}

/// The exact envelope (min for maximization, max for minimization) of the
/// lines `t ↦ slope·t + intercept` over `[lo, hi]`, as breakpoints with
/// collinear interior points merged — the same representation the 1-D
/// parametric sweep produces, so slices compare bitwise.
fn envelope(
    lines: &[(Rational, Rational)],
    lo: &Rational,
    hi: &Rational,
    objective: Objective,
) -> ValueFunction {
    assert!(!lines.is_empty(), "envelope of no lines");
    let eval = |t: &Rational| -> Rational {
        let values = lines.iter().map(|(a, b)| {
            let mut v = b.clone();
            if !a.is_zero() && !t.is_zero() {
                v.add_mul_assign(a, t);
            }
            v
        });
        match objective {
            Objective::Maximize => values.min(),
            Objective::Minimize => values.max(),
        }
        .expect("non-empty line set")
    };
    if lo == hi {
        return ValueFunction {
            breakpoints: vec![(lo.clone(), eval(lo))],
        };
    }
    let mut candidates: Vec<Rational> = vec![lo.clone(), hi.clone()];
    for (i, (ai, bi)) in lines.iter().enumerate() {
        for (aj, bj) in &lines[i + 1..] {
            if ai == aj {
                continue;
            }
            let t = &(bj - bi) / &(ai - aj);
            if t > *lo && t < *hi {
                candidates.push(t);
            }
        }
    }
    candidates.sort();
    candidates.dedup();
    let points: Vec<(Rational, Rational)> = candidates
        .into_iter()
        .map(|t| {
            let v = eval(&t);
            (t, v)
        })
        .collect();
    ValueFunction {
        breakpoints: merge_collinear(points),
    }
}

fn dot(a: &[Rational], b: &[Rational]) -> Rational {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = Rational::zero();
    for (x, y) in a.iter().zip(b) {
        if !x.is_zero() && !y.is_zero() {
            acc.add_mul_assign(x, y);
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parametric::{parametric_rhs, parametric_rhs_cold};
    use projtile_arith::{int, ratio};

    /// The paper's matmul tiling LP (6.3) with rows β1, β2, β3 appended after
    /// the three footprint rows, all starting at zero.
    fn matmul_tiling_lp() -> LinearProgram {
        let mut lp = LinearProgram::maximize(vec![int(1), int(1), int(1)]);
        for row in [[1, 0, 1], [1, 1, 0], [0, 1, 1]] {
            lp.add_constraint(Constraint::new(
                row.iter().map(|&v| int(v)).collect(),
                Relation::Le,
                int(1),
            ));
        }
        for k in 0..3 {
            let mut coeffs = vec![int(0); 3];
            coeffs[k] = int(1);
            lp.add_constraint(Constraint::new(coeffs, Relation::Le, int(0)));
        }
        lp
    }

    fn beta_directions() -> Vec<Vec<Rational>> {
        (0..3)
            .map(|k| {
                let mut d = vec![int(0); 6];
                d[3 + k] = int(1);
                d
            })
            .collect()
    }

    fn unit_box(p: usize) -> ParamBox {
        ParamBox::new(vec![int(0); p], vec![int(1); p]).unwrap()
    }

    #[test]
    fn matmul_surface_recovers_section_6_1_closed_form() {
        // §6.1: the exponent is min(β1+β2+β3, 1+β1, 1+β2, 1+β3, 3/2).
        let lp = matmul_tiling_lp();
        let surface = parametric_rhs_box(&lp, &beta_directions(), &unit_box(3)).unwrap();
        let expected = [
            (vec![int(1), int(1), int(1)], int(0)),
            (vec![int(1), int(0), int(0)], int(1)),
            (vec![int(0), int(1), int(0)], int(1)),
            (vec![int(0), int(0), int(1)], int(1)),
            (vec![int(0), int(0), int(0)], ratio(3, 2)),
        ];
        let pieces = surface.pieces();
        for (gradient, constant) in &expected {
            assert!(
                pieces
                    .iter()
                    .any(|p| p.gradient == *gradient && p.constant == *constant),
                "missing piece {gradient:?} + {constant}"
            );
        }
        // Every discovered piece is attained at its witness, so the envelope
        // evaluation reproduces the closed form exactly on a grid.
        for i in 0..=4u32 {
            for j in 0..=4u32 {
                for k in 0..=4u32 {
                    let theta = [ratio(i as i64, 4), ratio(j as i64, 4), ratio(k as i64, 4)];
                    let closed = theta
                        .iter()
                        .fold(Rational::zero(), |acc, b| &acc + b)
                        .min(&int(1) + theta.iter().min().unwrap())
                        .min(ratio(3, 2));
                    assert_eq!(surface.value_at(&theta), closed, "θ = {theta:?}");
                }
            }
        }
    }

    #[test]
    fn surface_slices_match_one_dimensional_sweeps_bitwise() {
        let lp = matmul_tiling_lp();
        let dirs = beta_directions();
        let surface = parametric_rhs_box(&lp, &dirs, &unit_box(3)).unwrap();
        // Slicing along β3 with β1 = β2 = 1 is exactly the 1-D sweep of the
        // last row of the program with the first two β rows at 1.
        let mut base = lp.clone();
        base.constraints[3].rhs = int(1);
        base.constraints[4].rhs = int(1);
        let dir3: Vec<Rational> = (0..6).map(|i| int(i64::from(i == 5))).collect();
        let warm = parametric_rhs(&base, &dir3, int(0), int(1)).unwrap();
        let cold = parametric_rhs_cold(&base, &dir3, int(0), int(1)).unwrap();
        let slice = surface.slice_axis(2, &[int(1), int(1), int(0)]);
        assert_eq!(slice, warm);
        assert_eq!(slice, cold);
        assert_eq!(slice.num_pieces(), 2);
        assert!(slice.breakpoints.iter().any(|(t, _)| *t == ratio(1, 2)));
    }

    #[test]
    fn warm_and_cold_surfaces_evaluate_identically() {
        let lp = matmul_tiling_lp();
        let dirs = beta_directions();
        let domain = unit_box(3);
        let warm = parametric_rhs_box(&lp, &dirs, &domain).unwrap();
        let cold = parametric_rhs_box_cold(&lp, &dirs, &domain).unwrap();
        for i in 0..=3u32 {
            for j in 0..=3u32 {
                for k in 0..=3u32 {
                    let theta = [ratio(i as i64, 3), ratio(j as i64, 3), ratio(k as i64, 3)];
                    assert_eq!(warm.value_at(&theta), cold.value_at(&theta), "{theta:?}");
                }
            }
        }
        // And the 1-D restrictions agree bitwise along every axis.
        let at = [ratio(2, 3), ratio(1, 3), ratio(1, 2)];
        for axis in 0..3 {
            assert_eq!(warm.slice_axis(axis, &at), cold.slice_axis(axis, &at));
        }
    }

    #[test]
    fn segment_slice_agrees_with_pointwise_evaluation() {
        let lp = matmul_tiling_lp();
        let surface = parametric_rhs_box(&lp, &beta_directions(), &unit_box(3)).unwrap();
        let from = [int(0), ratio(1, 2), int(0)];
        let to = [int(1), ratio(1, 2), int(1)];
        let vf = surface.slice_segment(&from, &to);
        for num in 0..=6i64 {
            let t = ratio(num, 6);
            let theta: Vec<Rational> = from
                .iter()
                .zip(&to)
                .map(|(f, g)| {
                    let mut v = f.clone();
                    v.add_mul_assign(&t, &(g - f));
                    v
                })
                .collect();
            assert_eq!(vf.value_at(&t), surface.value_at(&theta), "t = {t}");
        }
    }

    #[test]
    fn minimization_surface_is_convex_envelope() {
        // min x  st  x ≥ θ_1, x ≥ θ_2: value = max(θ_1, θ_2), convex.
        let mut lp = LinearProgram::minimize(vec![int(1)]);
        lp.add_constraint(Constraint::new(vec![int(1)], Relation::Ge, int(0)));
        lp.add_constraint(Constraint::new(vec![int(1)], Relation::Ge, int(0)));
        let dirs = vec![vec![int(1), int(0)], vec![int(0), int(1)]];
        let surface = parametric_rhs_box(&lp, &dirs, &unit_box(2)).unwrap();
        assert_eq!(surface.value_at(&[ratio(1, 3), ratio(2, 3)]), ratio(2, 3));
        assert_eq!(surface.value_at(&[int(1), int(0)]), int(1));
        let slice = surface.slice_axis(0, &[int(0), ratio(1, 2)]);
        assert_eq!(slice.num_pieces(), 2);
        assert!(slice.breakpoints.iter().any(|(t, _)| *t == ratio(1, 2)));
    }

    #[test]
    fn degenerate_axes_are_supported() {
        // A flat axis (lo = hi) pins that parameter; the surface along the
        // remaining axis still decomposes exactly.
        let lp = matmul_tiling_lp();
        let domain = ParamBox::new(
            vec![int(0), ratio(1, 2), int(0)],
            vec![int(1), ratio(1, 2), int(1)],
        )
        .unwrap();
        let surface = parametric_rhs_box(&lp, &beta_directions(), &domain).unwrap();
        for i in 0..=4i64 {
            for k in 0..=4i64 {
                let theta = [ratio(i, 4), ratio(1, 2), ratio(k, 4)];
                let closed = (&(&theta[0] + &ratio(1, 2)) + &theta[2])
                    .min(&int(1) + theta.iter().min().unwrap())
                    .min(ratio(3, 2));
                assert_eq!(surface.value_at(&theta), closed, "{theta:?}");
            }
        }
        // Regression: slicing *along* the flat axis yields a single-point
        // value function that still evaluates at its only θ.
        // f(1/4, 1/2, 3/4) = min(3/2, 1 + 1/4, 3/2) = 5/4.
        let flat_slice = surface.slice_axis(1, &[ratio(1, 4), int(0), ratio(3, 4)]);
        assert_eq!(flat_slice.breakpoints.len(), 1);
        assert_eq!(flat_slice.value_at(&ratio(1, 2)), ratio(5, 4));
    }

    #[test]
    fn point_box_is_a_single_probe() {
        let lp = matmul_tiling_lp();
        let domain = ParamBox::new(vec![ratio(1, 4); 3], vec![ratio(1, 4); 3]).unwrap();
        let surface = parametric_rhs_box(&lp, &beta_directions(), &domain).unwrap();
        assert_eq!(surface.value_at(&vec![ratio(1, 4); 3]), ratio(3, 4));
    }

    #[test]
    fn malformed_queries_rejected() {
        let lp = matmul_tiling_lp();
        let domain = unit_box(2);
        assert!(matches!(
            parametric_rhs_box(&lp, &beta_directions(), &domain),
            Err(LpError::Malformed(_))
        ));
        let bad_dir = vec![vec![int(1)], vec![int(1)]];
        assert!(matches!(
            parametric_rhs_box(&lp, &bad_dir, &domain),
            Err(LpError::Malformed(_))
        ));
        assert!(ParamBox::new(vec![int(1)], vec![int(0)]).is_err());
        assert!(ParamBox::new(vec![], vec![]).is_err());
    }

    #[test]
    fn render_produces_readable_closed_forms() {
        let names = ["β1", "β2", "β3"];
        let piece = AffinePiece {
            gradient: vec![int(0), int(0), int(1)],
            constant: int(1),
        };
        assert_eq!(piece.render(&names), "1 + β3");
        let piece = AffinePiece {
            gradient: vec![int(1), int(1), int(1)],
            constant: int(0),
        };
        assert_eq!(piece.render(&names), "β1 + β2 + β3");
        let piece = AffinePiece {
            gradient: vec![int(0), int(0), int(0)],
            constant: ratio(3, 2),
        };
        assert_eq!(piece.render(&names), "3/2");
        let piece = AffinePiece {
            gradient: vec![ratio(-1, 2), int(0), int(0)],
            constant: int(2),
        };
        assert_eq!(piece.render(&names), "2 - 1/2·β1");
        let piece = AffinePiece {
            gradient: vec![int(0); 3],
            constant: int(0),
        };
        assert_eq!(piece.render(&names), "0");
    }
}
