//! One-dimensional parametric right-hand-side analysis.
//!
//! Section 7 of the paper observes that the optimal tile cardinality is
//! `M^{f(L_1,…,L_d)}` for a *piecewise-linear* function `f` of the log-bounds
//! `β_i = log_M L_i`, because the tiling LP (5.1) is a linear program whose
//! right-hand side depends linearly on the `β_i`. This module computes the
//! exact value function of an LP along a one-dimensional ray of right-hand
//! sides, i.e. `θ ↦ opt(lp with rhs b + θ·direction)`, as a list of
//! breakpoints of a piecewise-linear function.
//!
//! The algorithm exploits the fact that the optimal-value function of an LP is
//! concave in the right-hand side for maximization problems (convex for
//! minimization): if the value at the midpoint of an interval lies exactly on
//! the chord between the endpoint values, the function is linear on the whole
//! interval. Bisection with that exact test yields every breakpoint. All
//! arithmetic is exact, so no breakpoint can be missed due to rounding.

use projtile_arith::Rational;
use serde::{Deserialize, Serialize};

use crate::problem::{LinearProgram, Objective};
use crate::LpError;

/// A piecewise-linear function sampled at its breakpoints.
///
/// Between consecutive breakpoints the function is affine; the breakpoint list
/// always includes both interval endpoints and is sorted by parameter value.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ValueFunction {
    /// `(θ, value)` pairs, sorted by `θ`, containing every breakpoint.
    pub breakpoints: Vec<(Rational, Rational)>,
}

impl ValueFunction {
    /// Evaluates the function at `theta` by linear interpolation.
    ///
    /// # Panics
    /// Panics if `theta` lies outside the analyzed interval.
    // lint: allow(L008) expect/unreachable pin breakpoint coverage: the solver emits a total piecewise function
    pub fn value_at(&self, theta: &Rational) -> Rational {
        let first = &self
            .breakpoints
            .first()
            .expect("non-empty value function")
            .0;
        let last = &self.breakpoints.last().expect("non-empty value function").0;
        assert!(
            theta >= first && theta <= last,
            "theta outside analyzed interval"
        );
        // A degenerate (single-point) interval has one breakpoint and no
        // windows; theta can only be that point.
        if self.breakpoints.len() == 1 {
            return self.breakpoints[0].1.clone();
        }
        for window in self.breakpoints.windows(2) {
            let (t0, v0) = &window[0];
            let (t1, v1) = &window[1];
            if theta >= t0 && theta <= t1 {
                if t0 == t1 {
                    return v0.clone();
                }
                let slope = &(v1 - v0) / &(t1 - t0);
                return v0 + &(&slope * &(theta - t0));
            }
        }
        unreachable!("theta bracketed by construction")
    }

    /// Number of affine pieces.
    pub fn num_pieces(&self) -> usize {
        self.breakpoints.len().saturating_sub(1)
    }

    /// The distinct slopes of the pieces, in parameter order.
    pub fn slopes(&self) -> Vec<Rational> {
        self.breakpoints
            .windows(2)
            .filter(|w| w[0].0 != w[1].0)
            .map(|w| &(&w[1].1 - &w[0].1) / &(&w[1].0 - &w[0].0))
            .collect()
    }
}

/// Computes the optimal value of `lp` with its right-hand side replaced by
/// `rhs_i + θ·direction_i`, for `θ` ranging over `[lo, hi]`, as an exact
/// piecewise-linear [`ValueFunction`].
///
/// Returns an error if the LP is infeasible or unbounded anywhere on the
/// interval (the projective tiling LPs of this workspace are always feasible
/// and bounded, so an error indicates a malformed query).
pub fn parametric_rhs(
    lp: &LinearProgram,
    direction: &[Rational],
    lo: Rational,
    hi: Rational,
) -> Result<ValueFunction, LpError> {
    parametric_rhs_impl(lp, direction, lo, hi, true)
}

/// [`parametric_rhs`] with every probe answered by an independent cold solve
/// instead of the warm-started context. Retained as the differential oracle
/// for the warm path: both produce the same exact value function (optimal
/// values are unique), which the test suite asserts.
pub fn parametric_rhs_cold(
    lp: &LinearProgram,
    direction: &[Rational],
    lo: Rational,
    hi: Rational,
) -> Result<ValueFunction, LpError> {
    parametric_rhs_impl(lp, direction, lo, hi, false)
}

/// [`parametric_rhs`] probing through a **caller-supplied** warm context
/// instead of a fresh one, so a long-lived session (e.g. a pooled context of
/// [`crate::ContextPool`]) carries its retained basis across sweeps. The
/// first probe goes through the structure-checked entry point (the context
/// may retain an unrelated program; an incompatible basis cold-restarts
/// transparently) and later probes use the unchecked rhs-update fast path.
/// The returned value function is exactly that of [`parametric_rhs`] —
/// optimal values are unique, so the context's history cannot change it.
pub fn parametric_rhs_with(
    lp: &LinearProgram,
    direction: &[Rational],
    lo: Rational,
    hi: Rational,
    ctx: &mut crate::warm::SolverContext,
) -> Result<ValueFunction, LpError> {
    parametric_rhs_driver(lp, direction, lo, hi, true, Some(ctx))
}

fn parametric_rhs_impl(
    lp: &LinearProgram,
    direction: &[Rational],
    lo: Rational,
    hi: Rational,
    warm: bool,
) -> Result<ValueFunction, LpError> {
    parametric_rhs_driver(lp, direction, lo, hi, warm, None)
}

fn parametric_rhs_driver(
    lp: &LinearProgram,
    direction: &[Rational],
    lo: Rational,
    hi: Rational,
    warm: bool,
    external: Option<&mut crate::warm::SolverContext>,
) -> Result<ValueFunction, LpError> {
    if direction.len() != lp.num_constraints() {
        return Err(LpError::Malformed(format!(
            "direction has {} entries but the program has {} constraints",
            direction.len(),
            lp.num_constraints()
        )));
    }
    if lo > hi {
        return Err(LpError::Malformed("empty parameter interval".into()));
    }
    // One scratch program and one warm-started solver context reused across
    // every probe of the value function: only the right-hand sides change
    // with θ — and only at the entries where `direction` is nonzero, so each
    // probe rewrites exactly those — and every solve after the first (cold)
    // one re-enters the dual simplex from the previous optimal basis. Only
    // objective values are consumed here, and optimal values are unique, so
    // the vertex-agnostic warm value probe is exact (its agreement with
    // fresh cold solves at every breakpoint is pinned by tests).
    let base_rhs: Vec<Rational> = lp.constraints.iter().map(|c| c.rhs.clone()).collect();
    let varying: Vec<usize> = direction
        .iter()
        .enumerate()
        .filter(|(_, d)| !d.is_zero())
        .map(|(i, _)| i)
        .collect();
    // An external context may retain a basis for a *different* program, so
    // its first probe must go through the structure-checked entry point;
    // after that the scratch program is the retained one and only its rhs
    // changes between probes.
    let mut checked_first_probe = external.is_some();
    let mut own_ctx = crate::warm::SolverContext::new();
    let ctx_slot: &mut crate::warm::SolverContext = match external {
        Some(ctx) => ctx,
        None => &mut own_ctx,
    };
    let scratch = std::cell::RefCell::new((lp.clone(), ctx_slot, &mut checked_first_probe));
    let value = |theta: &Rational| -> Result<Rational, LpError> {
        let mut guard = scratch.borrow_mut();
        let (shifted, ctx, first) = &mut *guard;
        for &i in &varying {
            let c = &mut shifted.constraints[i];
            c.rhs = base_rhs[i].clone();
            c.rhs.add_mul_assign(&direction[i], theta);
        }
        if warm {
            if std::mem::take(&mut **first) {
                ctx.optimal_value(shifted)
            } else {
                // The scratch program is owned by this sweep and only its rhs
                // ever changes, so the structure-check-free re-entry applies.
                ctx.optimal_value_rhs_update(shifted)
            }
        } else {
            Ok(crate::solve(shifted)?.objective_value)
        }
    };

    let v_lo = value(&lo)?;
    if lo == hi {
        return Ok(ValueFunction {
            breakpoints: vec![(lo, v_lo)],
        });
    }
    let v_hi = value(&hi)?;

    let mut breakpoints = vec![(lo.clone(), v_lo.clone())];
    refine(
        &value,
        lp.objective,
        &lo,
        &v_lo,
        &hi,
        &v_hi,
        &mut breakpoints,
        0,
    )?;
    breakpoints.push((hi, v_hi));
    // Merge collinear interior points so each remaining breakpoint is genuine.
    let merged = merge_collinear(breakpoints);
    Ok(ValueFunction {
        breakpoints: merged,
    })
}

/// Tests whether the value function is affine on `[a, b]` by probing the
/// midpoint. For a concave (max) or convex (min) function, midpoint-on-chord
/// is equivalent to linearity on the whole segment, so there are no false
/// positives.
fn segment_is_linear(
    value: &dyn Fn(&Rational) -> Result<Rational, LpError>,
    a: &Rational,
    va: &Rational,
    b: &Rational,
    vb: &Rational,
) -> Result<bool, LpError> {
    let two = Rational::from(2u32);
    let mid = &(a + b) / &two;
    let vmid = value(&mid)?;
    Ok(vmid == &(va + vb) / &two)
}

/// Finds the affine piece containing the endpoint `a` (resp. `b` when
/// `from_left` is false) within `[a, b]`, returning a second point on that
/// piece. The piece has positive length, so repeated halving towards the
/// endpoint terminates quickly.
#[allow(clippy::too_many_arguments)]
fn piece_anchor(
    value: &dyn Fn(&Rational) -> Result<Rational, LpError>,
    a: &Rational,
    va: &Rational,
    b: &Rational,
    vb: &Rational,
    from_left: bool,
) -> Result<(Rational, Rational), LpError> {
    let two = Rational::from(2u32);
    let (fixed, vfixed) = if from_left { (a, va) } else { (b, vb) };
    let mut other = if from_left { b.clone() } else { a.clone() };
    let mut vother = if from_left { vb.clone() } else { va.clone() };
    for _ in 0..128 {
        let linear = if from_left {
            segment_is_linear(value, fixed, vfixed, &other, &vother)?
        } else {
            segment_is_linear(value, &other, &vother, fixed, vfixed)?
        };
        if linear {
            return Ok((other, vother));
        }
        other = &(fixed + &other) / &two;
        vother = value(&other)?;
    }
    Ok((other, vother))
}

/// Recursively refines `[a, b]`, appending interior breakpoints in order.
///
/// Strategy: if the interval is linear, stop. Otherwise determine the exact
/// affine pieces containing each endpoint (via [`piece_anchor`]) and intersect
/// their lines; if the value function passes through that intersection it is
/// the unique breakpoint of the interval (concavity/convexity makes the check
/// sound) and is recorded *exactly*, even when it is not a dyadic point of the
/// interval. Intervals containing several breakpoints recurse on halves.
#[allow(clippy::too_many_arguments)]
fn refine(
    value: &dyn Fn(&Rational) -> Result<Rational, LpError>,
    objective: Objective,
    a: &Rational,
    va: &Rational,
    b: &Rational,
    vb: &Rational,
    out: &mut Vec<(Rational, Rational)>,
    depth: usize,
) -> Result<(), LpError> {
    // The value function of an LP with ≤ a few dozen constraints has at most a
    // few dozen breakpoints; depth 64 is far beyond anything reachable and
    // guards against a (theoretically impossible) runaway recursion.
    if depth > 64 {
        return Ok(());
    }
    let two = Rational::from(2u32);
    let mid = &(a + b) / &two;
    let vmid = value(&mid)?;
    let chord = &(va + vb) / &two;
    // Concavity (max) / convexity (min) sanity check: the midpoint can never
    // fall strictly on the wrong side of the chord.
    match objective {
        Objective::Maximize => debug_assert!(vmid >= chord),
        Objective::Minimize => debug_assert!(vmid <= chord),
    }
    if vmid == chord {
        return Ok(());
    }

    // Exact single-breakpoint detection: intersect the endpoint pieces.
    let (xl, vxl) = piece_anchor(value, a, va, b, vb, true)?;
    let (xr, vxr) = piece_anchor(value, a, va, b, vb, false)?;
    let slope_left = &(&vxl - va) / &(&xl - a);
    let slope_right = &(vb - &vxr) / &(b - &xr);
    if slope_left != slope_right {
        // va + sL (θ - a) = vb + sR (θ - b)
        let numer = &(&(vb - va) + &(&slope_left * a)) - &(&slope_right * b);
        let theta = &numer / &(&slope_left - &slope_right);
        if theta > *a && theta < *b {
            let vtheta = value(&theta)?;
            let on_left_line = vtheta == va + &(&slope_left * &(&theta - a));
            if on_left_line {
                // For a concave/convex piecewise-linear function, lying on the
                // extension of both endpoint pieces means both pieces reach θ,
                // so θ is the unique breakpoint in (a, b).
                out.push((theta, vtheta));
                return Ok(());
            }
        }
    }

    // Fallback: plain bisection (more than one breakpoint in the interval).
    refine(value, objective, a, va, &mid, &vmid, out, depth + 1)?;
    out.push((mid.clone(), vmid.clone()));
    refine(value, objective, &mid, &vmid, b, vb, out, depth + 1)
}

/// Removes interior points lying exactly on the segment between their
/// neighbours, so every remaining breakpoint is a genuine slope change.
/// Shared with the multiparametric slicer ([`crate::mplp`]), which must
/// produce bitwise-identical [`ValueFunction`]s to this module's sweeps.
pub(crate) fn merge_collinear(points: Vec<(Rational, Rational)>) -> Vec<(Rational, Rational)> {
    if points.len() <= 2 {
        return points;
    }
    let mut out: Vec<(Rational, Rational)> = Vec::with_capacity(points.len());
    for p in points {
        while out.len() >= 2 {
            let a = &out[out.len() - 2];
            let b = &out[out.len() - 1];
            // Collinear iff (b-a) x (p-a) == 0.
            let cross = &(&(&b.0 - &a.0) * &(&p.1 - &a.1)) - &(&(&b.1 - &a.1) * &(&p.0 - &a.0));
            if cross.is_zero() {
                out.pop();
            } else {
                break;
            }
        }
        out.push(p);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{Constraint, Relation};
    use projtile_arith::{int, ratio};

    /// The paper's matrix-multiplication tiling LP (6.3) with β₃ as the
    /// parameter: value is 1 + β₃ for β₃ ≤ 1/2 and 3/2 afterwards.
    fn matmul_tiling_lp() -> LinearProgram {
        let mut lp = LinearProgram::maximize(vec![int(1), int(1), int(1)]);
        lp.add_constraint(Constraint::new(
            vec![int(1), int(0), int(1)],
            Relation::Le,
            int(1),
        ));
        lp.add_constraint(Constraint::new(
            vec![int(1), int(1), int(0)],
            Relation::Le,
            int(1),
        ));
        lp.add_constraint(Constraint::new(
            vec![int(0), int(1), int(1)],
            Relation::Le,
            int(1),
        ));
        lp.add_constraint(Constraint::new(
            vec![int(0), int(0), int(1)],
            Relation::Le,
            int(0),
        ));
        lp
    }

    #[test]
    fn matmul_value_function_has_one_breakpoint_at_half() {
        let lp = matmul_tiling_lp();
        let direction = vec![int(0), int(0), int(0), int(1)];
        let vf = parametric_rhs(&lp, &direction, int(0), int(1)).unwrap();
        // Pieces: slope 1 on [0, 1/2], slope 0 on [1/2, 1].
        assert_eq!(vf.num_pieces(), 2);
        assert_eq!(vf.slopes(), vec![int(1), int(0)]);
        assert_eq!(vf.value_at(&int(0)), int(1));
        assert_eq!(vf.value_at(&ratio(1, 4)), ratio(5, 4));
        assert_eq!(vf.value_at(&ratio(1, 2)), ratio(3, 2));
        assert_eq!(vf.value_at(&int(1)), ratio(3, 2));
        assert!(vf.breakpoints.iter().any(|(t, _)| *t == ratio(1, 2)));
    }

    #[test]
    fn linear_value_function_is_single_piece() {
        // max x st x <= theta: value = theta (single affine piece).
        let mut lp = LinearProgram::maximize(vec![int(1)]);
        lp.add_constraint(Constraint::new(vec![int(1)], Relation::Le, int(0)));
        let vf = parametric_rhs(&lp, &[int(1)], int(0), int(10)).unwrap();
        assert_eq!(vf.num_pieces(), 1);
        assert_eq!(vf.slopes(), vec![int(1)]);
        assert_eq!(vf.value_at(&int(7)), int(7));
    }

    #[test]
    fn degenerate_interval() {
        let lp = matmul_tiling_lp();
        let direction = vec![int(0), int(0), int(0), int(1)];
        let vf = parametric_rhs(&lp, &direction, ratio(1, 3), ratio(1, 3)).unwrap();
        assert_eq!(vf.breakpoints.len(), 1);
        assert_eq!(vf.breakpoints[0].1, ratio(4, 3));
        // Regression: value_at must work on a single-breakpoint function
        // (there is no window to interpolate in) and still reject other θ.
        assert_eq!(vf.value_at(&ratio(1, 3)), ratio(4, 3));
        assert!(std::panic::catch_unwind(|| vf.value_at(&ratio(1, 2))).is_err());
    }

    #[test]
    fn mismatched_direction_rejected() {
        let lp = matmul_tiling_lp();
        assert!(matches!(
            parametric_rhs(&lp, &[int(1)], int(0), int(1)),
            Err(LpError::Malformed(_))
        ));
        assert!(matches!(
            parametric_rhs(&lp, &[int(0), int(0), int(0), int(1)], int(1), int(0)),
            Err(LpError::Malformed(_))
        ));
    }

    #[test]
    fn value_at_outside_interval_panics() {
        let mut lp = LinearProgram::maximize(vec![int(1)]);
        lp.add_constraint(Constraint::new(vec![int(1)], Relation::Le, int(0)));
        let vf = parametric_rhs(&lp, &[int(1)], int(0), int(1)).unwrap();
        let res = std::panic::catch_unwind(|| vf.value_at(&int(5)));
        assert!(res.is_err());
    }

    #[test]
    fn warm_and_cold_parametric_analyses_are_identical() {
        // The warm-started probes may visit different optimal vertices than
        // cold ones, but the value function is built from optimal values
        // only, so the two analyses must agree exactly — breakpoints and all.
        let lp = matmul_tiling_lp();
        let direction = vec![int(0), int(1), int(0), int(1)];
        let warm = parametric_rhs(&lp, &direction, int(0), int(2)).unwrap();
        let cold = parametric_rhs_cold(&lp, &direction, int(0), int(2)).unwrap();
        assert_eq!(warm, cold);
    }

    #[test]
    fn external_context_sweep_matches_and_survives_unrelated_history() {
        // A pooled context that previously solved an unrelated program must
        // produce the identical value function (the first probe detects the
        // structure change and cold-restarts), and a second sweep through the
        // same context warm-starts from the first sweep's basis.
        let lp = matmul_tiling_lp();
        let direction: Vec<Rational> = (0..lp.num_constraints())
            .map(|i| if i == 5 { int(1) } else { int(0) })
            .collect();
        let expect = parametric_rhs(&lp, &direction, int(0), int(1)).unwrap();

        let mut ctx = crate::warm::SolverContext::new();
        let mut unrelated = LinearProgram::maximize(vec![int(1)]);
        unrelated.add_constraint(Constraint::new(vec![int(1)], Relation::Le, int(5)));
        ctx.solve(&unrelated).unwrap();

        let first = parametric_rhs_with(&lp, &direction, int(0), int(1), &mut ctx).unwrap();
        assert_eq!(first, expect);
        let colds_after_first = ctx.stats().cold_solves;
        let second = parametric_rhs_with(&lp, &direction, int(0), int(1), &mut ctx).unwrap();
        assert_eq!(second, expect);
        // The second sweep never cold-restarts: the retained basis matches.
        assert_eq!(ctx.stats().cold_solves, colds_after_first);
    }

    #[test]
    fn value_at_agrees_with_fresh_solve_exactly_at_breakpoints() {
        // Regression: breakpoints are where two affine pieces meet, so an
        // interpolation bug would show up exactly there (picking the wrong
        // window or the wrong slope) while interior points still pass. Check
        // both stored breakpoint values and value_at against a fresh cold
        // solve at every breakpoint θ.
        let lp = matmul_tiling_lp();
        let direction = vec![int(0), int(0), int(0), int(1)];
        let vf = parametric_rhs(&lp, &direction, int(0), int(1)).unwrap();
        for (theta, stored) in &vf.breakpoints {
            let mut shifted = lp.clone();
            for (c, d) in shifted.constraints.iter_mut().zip(&direction) {
                c.rhs = &c.rhs + &(d * theta);
            }
            let fresh = crate::solve(&shifted).unwrap().objective_value;
            assert_eq!(stored, &fresh, "stored value wrong at θ = {theta}");
            assert_eq!(
                vf.value_at(theta),
                fresh,
                "interpolated value wrong at θ = {theta}"
            );
        }
        // The genuine breakpoint 1/2 is among them.
        assert!(vf.breakpoints.iter().any(|(t, _)| *t == ratio(1, 2)));
    }

    #[test]
    fn minimization_value_function_is_convex() {
        // min x st x >= theta, x >= 1-theta: value = max(theta, 1-theta), convex with
        // a breakpoint at 1/2.
        let mut lp = LinearProgram::minimize(vec![int(1)]);
        lp.add_constraint(Constraint::new(vec![int(1)], Relation::Ge, int(0)));
        lp.add_constraint(Constraint::new(vec![int(1)], Relation::Ge, int(1)));
        let direction = vec![int(1), int(-1)];
        let vf = parametric_rhs(&lp, &direction, int(0), int(1)).unwrap();
        assert_eq!(vf.num_pieces(), 2);
        assert_eq!(vf.value_at(&ratio(1, 2)), ratio(1, 2));
        assert_eq!(vf.value_at(&int(0)), int(1));
        assert_eq!(vf.value_at(&int(1)), int(1));
    }
}
