//! Linear-program problem description and solution types.
//!
//! All variables are implicitly constrained to be non-negative, which matches
//! every LP in the paper (the `s_i`, `ŝ_i`, `λ_i`, and `ζ_i` variables are all
//! exponents or dual multipliers and are non-negative by definition).

use projtile_arith::Rational;
use serde::{Deserialize, Serialize};

use crate::LpError;

/// Whether the objective is maximized or minimized.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Objective {
    /// Maximize the objective function.
    Maximize,
    /// Minimize the objective function.
    Minimize,
}

/// Direction of a linear constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Relation {
    /// `a·x <= b`
    Le,
    /// `a·x >= b`
    Ge,
    /// `a·x == b`
    Eq,
}

/// A single linear constraint `coeffs · x  (relation)  rhs`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Constraint {
    /// Coefficients, one per structural variable.
    pub coeffs: Vec<Rational>,
    /// Constraint direction.
    pub relation: Relation,
    /// Right-hand side.
    pub rhs: Rational,
}

impl Constraint {
    /// Creates a constraint.
    pub fn new(coeffs: Vec<Rational>, relation: Relation, rhs: Rational) -> Constraint {
        Constraint {
            coeffs,
            relation,
            rhs,
        }
    }

    /// Evaluates the left-hand side at a point.
    pub fn lhs_at(&self, x: &[Rational]) -> Rational {
        dot(&self.coeffs, x)
    }

    /// Returns `true` iff the point satisfies this constraint exactly.
    pub fn is_satisfied_by(&self, x: &[Rational]) -> bool {
        let lhs = self.lhs_at(x);
        match self.relation {
            Relation::Le => lhs <= self.rhs,
            Relation::Ge => lhs >= self.rhs,
            Relation::Eq => lhs == self.rhs,
        }
    }
}

/// A linear program over non-negative variables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinearProgram {
    /// Maximize or minimize.
    pub objective: Objective,
    /// Objective coefficients, one per structural variable.
    pub costs: Vec<Rational>,
    /// The constraints.
    pub constraints: Vec<Constraint>,
}

impl LinearProgram {
    /// Creates a maximization problem with the given objective coefficients.
    pub fn maximize(costs: Vec<Rational>) -> LinearProgram {
        LinearProgram {
            objective: Objective::Maximize,
            costs,
            constraints: Vec::new(),
        }
    }

    /// Creates a minimization problem with the given objective coefficients.
    pub fn minimize(costs: Vec<Rational>) -> LinearProgram {
        LinearProgram {
            objective: Objective::Minimize,
            costs,
            constraints: Vec::new(),
        }
    }

    /// Number of structural variables.
    pub fn num_vars(&self) -> usize {
        self.costs.len()
    }

    /// Number of constraints.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Adds a constraint, returning `&mut self` for chaining.
    pub fn add_constraint(&mut self, constraint: Constraint) -> &mut Self {
        self.constraints.push(constraint);
        self
    }

    /// Evaluates the objective at a point.
    pub fn objective_at(&self, x: &[Rational]) -> Rational {
        dot(&self.costs, x)
    }

    /// Returns `true` iff `x` is feasible: correct dimension, non-negative, and
    /// satisfying every constraint exactly.
    pub fn is_feasible(&self, x: &[Rational]) -> bool {
        x.len() == self.num_vars()
            && x.iter().all(|v| !v.is_negative())
            && self.constraints.iter().all(|c| c.is_satisfied_by(x))
    }

    /// Validates structural consistency (constraint widths match variable count).
    pub fn validate(&self) -> Result<(), LpError> {
        for (i, c) in self.constraints.iter().enumerate() {
            if c.coeffs.len() != self.num_vars() {
                return Err(LpError::Malformed(format!(
                    "constraint {i} has {} coefficients but the program has {} variables",
                    c.coeffs.len(),
                    self.num_vars()
                )));
            }
        }
        Ok(())
    }
}

/// An optimal solution to a linear program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Solution {
    /// Optimal objective value (in the original problem's sense).
    pub objective_value: Rational,
    /// Optimal values of the structural variables.
    pub values: Vec<Rational>,
}

pub(crate) fn dot(a: &[Rational], b: &[Rational]) -> Rational {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = Rational::zero();
    for (x, y) in a.iter().zip(b.iter()) {
        if !x.is_zero() && !y.is_zero() {
            acc += &(x * y);
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use projtile_arith::{int, ratio};

    #[test]
    fn constraint_satisfaction() {
        let c = Constraint::new(vec![int(1), int(2)], Relation::Le, int(4));
        assert!(c.is_satisfied_by(&[int(0), int(2)]));
        assert!(c.is_satisfied_by(&[int(4), int(0)]));
        assert!(!c.is_satisfied_by(&[int(1), int(2)]));
        assert_eq!(c.lhs_at(&[int(1), int(1)]), int(3));

        let e = Constraint::new(vec![int(1), int(1)], Relation::Eq, int(1));
        assert!(e.is_satisfied_by(&[ratio(1, 2), ratio(1, 2)]));
        assert!(!e.is_satisfied_by(&[ratio(1, 2), ratio(1, 3)]));
    }

    #[test]
    fn feasibility_checks_nonnegativity_and_dimension() {
        let mut lp = LinearProgram::maximize(vec![int(1), int(1)]);
        lp.add_constraint(Constraint::new(vec![int(1), int(1)], Relation::Le, int(1)));
        assert!(lp.is_feasible(&[ratio(1, 2), ratio(1, 2)]));
        assert!(!lp.is_feasible(&[ratio(1, 2)]));
        assert!(!lp.is_feasible(&[int(-1), int(1)]));
        assert!(!lp.is_feasible(&[int(1), int(1)]));
    }

    #[test]
    fn validate_rejects_ragged_constraints() {
        let mut lp = LinearProgram::minimize(vec![int(1), int(1)]);
        lp.add_constraint(Constraint::new(vec![int(1)], Relation::Ge, int(1)));
        assert!(matches!(lp.validate(), Err(LpError::Malformed(_))));
        let mut ok = LinearProgram::minimize(vec![int(1), int(1)]);
        ok.add_constraint(Constraint::new(vec![int(1), int(0)], Relation::Ge, int(1)));
        assert!(ok.validate().is_ok());
    }

    #[test]
    fn objective_evaluation() {
        let lp = LinearProgram::maximize(vec![int(2), int(3)]);
        assert_eq!(lp.objective_at(&[int(1), int(1)]), int(5));
        assert_eq!(lp.objective_at(&[ratio(1, 2), ratio(1, 3)]), int(2));
    }
}
