//! Property tests for the exact simplex solver.
//!
//! * Returned points are always exactly feasible and achieve the reported
//!   objective value.
//! * Strong duality: when both the primal and its explicitly-constructed dual
//!   have finite optima, the optimal values agree exactly.
//! * On bounded feasible regions (box constraints added), the solver never
//!   reports infeasibility or unboundedness.
//! * Differential warm-start checks: a [`SolverContext`] fed a family of
//!   related programs (perturbed right-hand sides, added/dropped rows) must
//!   return bitwise-identical optima to cold canonical solves, and the
//!   parametric value function must agree with fresh cold solves exactly at
//!   every breakpoint.

use projtile_arith::{int, ratio, Rational};
use projtile_lp::mplp::{parametric_rhs_box, parametric_rhs_box_cold, ParamBox};
use projtile_lp::parametric::{parametric_rhs, parametric_rhs_cold};
use projtile_lp::{
    dual_program, solve, solve_canonical, Constraint, LinearProgram, LpError, Objective, Relation,
    SolverContext,
};
use proptest::prelude::*;

/// Strategy: a random LP with `n` variables and `m` random `<=` constraints
/// with non-negative right-hand sides, plus a box `x_j <= box_bound` so the
/// problem is always feasible (x = 0) and bounded.
fn bounded_lp(n: usize, m: usize) -> impl Strategy<Value = LinearProgram> {
    let coeff = -3i64..=3i64;
    let costs = proptest::collection::vec(-5i64..=5i64, n);
    let rows = proptest::collection::vec(proptest::collection::vec(coeff, n), m);
    let rhs = proptest::collection::vec(0i64..=10i64, m);
    (costs, rows, rhs).prop_map(move |(costs, rows, rhs)| {
        let mut lp = LinearProgram::maximize(costs.into_iter().map(int).collect());
        for (row, b) in rows.into_iter().zip(rhs) {
            lp.add_constraint(Constraint::new(
                row.into_iter().map(int).collect(),
                Relation::Le,
                int(b),
            ));
        }
        // Box constraints keep the problem bounded.
        for j in 0..n {
            let mut coeffs = vec![Rational::zero(); n];
            coeffs[j] = Rational::one();
            lp.add_constraint(Constraint::new(coeffs, Relation::Le, int(7)));
        }
        lp
    })
}

/// Strategy: a "covering LP" shaped like the paper's HBL programs: minimize
/// `1ᵀs` subject to a random 0/1 matrix times `s >= 1`, where every row has at
/// least one `1` (so the program is feasible) — exactly the structure of LP
/// (3.1) for projective loop nests.
fn covering_lp(n: usize, d: usize) -> impl Strategy<Value = LinearProgram> {
    proptest::collection::vec(proptest::collection::vec(proptest::bool::ANY, n), d).prop_map(
        move |mut rows| {
            let mut lp = LinearProgram::minimize(vec![Rational::one(); n]);
            for row in rows.iter_mut() {
                if row.iter().all(|b| !b) {
                    row[0] = true;
                }
                lp.add_constraint(Constraint::new(
                    row.iter()
                        .map(|&b| if b { int(1) } else { int(0) })
                        .collect(),
                    Relation::Ge,
                    Rational::one(),
                ));
            }
            lp
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn bounded_lps_solve_and_are_feasible(lp in bounded_lp(4, 5)) {
        let sol = solve(&lp).expect("bounded feasible LP must solve");
        prop_assert!(lp.is_feasible(&sol.values));
        prop_assert_eq!(lp.objective_at(&sol.values), sol.objective_value.clone());
        // x = 0 is feasible with objective 0, so the max is >= 0.
        prop_assert!(sol.objective_value >= Rational::zero());
    }

    #[test]
    fn strong_duality_on_bounded_lps(lp in bounded_lp(3, 4)) {
        let p = solve(&lp).expect("primal solves");
        let dual = dual_program(&lp);
        let d = solve(&dual).expect("dual of a bounded feasible LP solves");
        prop_assert_eq!(p.objective_value, d.objective_value);
    }

    #[test]
    fn covering_lps_have_optimal_value_in_unit_range(lp in covering_lp(5, 5)) {
        // For 0/1 covering LPs with unit costs and d rows, the optimum lies in
        // (0, d] and the solution is a fractional cover.
        let sol = solve(&lp).expect("covering LP is feasible");
        prop_assert!(sol.objective_value > Rational::zero());
        prop_assert!(sol.objective_value <= int(lp.num_constraints() as i64));
        prop_assert!(lp.is_feasible(&sol.values));
        // Strong duality against the packing dual.
        let d = solve(&dual_program(&lp)).expect("packing dual solves");
        prop_assert_eq!(d.objective_value, sol.objective_value);
    }

    #[test]
    fn weak_duality_holds_for_feasible_dual_points(lp in bounded_lp(3, 3)) {
        // Any feasible dual point bounds the primal optimum from above
        // (maximization primal). Use the dual optimum perturbation 0 (itself).
        let p = solve(&lp).expect("primal solves");
        let dual = dual_program(&lp);
        if let Ok(d) = solve(&dual) {
            prop_assert!(d.objective_value >= p.objective_value.clone());
            prop_assert!(d.objective_value <= p.objective_value);
        }
    }

    #[test]
    fn warm_context_matches_cold_canonical_on_perturbed_rhs(
        lp in bounded_lp(4, 5),
        perturbations in proptest::collection::vec(
            proptest::collection::vec(-4i64..=6i64, 5), 1..8),
    ) {
        // One context fed a family of rhs perturbations of one program: every
        // answer must be bitwise-identical to a cold canonical solve,
        // including any infeasibility along the way.
        let mut ctx = SolverContext::new();
        let base_rhs: Vec<Rational> =
            lp.constraints.iter().map(|c| c.rhs.clone()).collect();
        for delta in &perturbations {
            let mut variant = lp.clone();
            for ((c, b), d) in variant.constraints.iter_mut().zip(&base_rhs).zip(delta) {
                // Only the first 5 (random) rows are perturbed; the box rows
                // keep the family bounded.
                c.rhs = b + &int(*d);
            }
            let warm = ctx.solve(&variant);
            let cold = solve_canonical(&variant);
            prop_assert_eq!(&warm, &cold);
            // The optimal value additionally matches the plain solver.
            if let (Ok(w), Ok(c)) = (&warm, &solve(&variant)) {
                prop_assert_eq!(&w.objective_value, &c.objective_value);
            }
        }
        // Every query was either warm or cold (a failed cold solve leaves no
        // reusable tableau, so a run may legitimately re-cold-start).
        let stats = ctx.stats();
        prop_assert_eq!(
            stats.warm_solves + stats.cold_solves,
            perturbations.len() as u64
        );
    }

    #[test]
    fn warm_context_matches_cold_canonical_on_covering_relaxations(
        lp in covering_lp(5, 6),
        masks in proptest::collection::vec(0u64..64, 1..10),
    ) {
        // The Theorem-2 shape: one covering matrix, right-hand sides relaxed
        // to zero on arbitrary subsets (= row deletion), revisited in an
        // arbitrary (not Gray) order.
        let mut ctx = SolverContext::new();
        for mask in &masks {
            let mut variant = lp.clone();
            for (i, c) in variant.constraints.iter_mut().enumerate() {
                if mask & (1 << i) != 0 {
                    c.rhs = Rational::zero();
                }
            }
            let warm = ctx.solve(&variant);
            let cold = solve_canonical(&variant);
            prop_assert_eq!(warm, cold);
        }
    }

    #[test]
    fn warm_context_survives_added_and_dropped_rows(
        lp in bounded_lp(3, 4),
        extra_row in proptest::collection::vec(0i64..=3i64, 3),
        extra_rhs in 0i64..=9i64,
    ) {
        // Structure changes (a row appended, then dropped again) must
        // transparently cold-restart and still agree with the cold solver.
        let mut ctx = SolverContext::new();
        let first = ctx.solve(&lp);
        prop_assert_eq!(&first, &solve_canonical(&lp));
        let mut grown = lp.clone();
        grown.add_constraint(Constraint::new(
            extra_row.into_iter().map(int).collect(),
            Relation::Le,
            int(extra_rhs),
        ));
        prop_assert_eq!(ctx.solve(&grown), solve_canonical(&grown));
        // Dropping the row again is another structure change.
        prop_assert_eq!(ctx.solve(&lp), solve_canonical(&lp));
        // A final rhs-only change warm-starts off the restored structure.
        let mut shifted = lp.clone();
        if let Some(c) = shifted.constraints.first_mut() {
            c.rhs = &c.rhs + &int(1);
        }
        prop_assert_eq!(ctx.solve(&shifted), solve_canonical(&shifted));
    }

    #[test]
    fn canonical_solve_agrees_with_plain_solve_on_value(lp in bounded_lp(4, 4)) {
        // solve_canonical picks a canonical vertex but can never change the
        // optimal value, feasibility, or solvability.
        let plain = solve(&lp).expect("bounded feasible LP solves");
        let canonical = solve_canonical(&lp).expect("canonical solve solves");
        prop_assert_eq!(&plain.objective_value, &canonical.objective_value);
        prop_assert!(lp.is_feasible(&canonical.values));
        prop_assert_eq!(
            lp.objective_at(&canonical.values),
            canonical.objective_value.clone()
        );
    }

    #[test]
    fn value_function_exact_at_breakpoints(
        lp in covering_lp(4, 4),
        direction_bits in proptest::collection::vec(proptest::bool::ANY, 4),
    ) {
        // The parametric value function (computed through warm-started value
        // solves) must agree with fresh cold solves exactly at every
        // breakpoint θ — the corners are where an interpolation or warm-start
        // bug would hide.
        let direction: Vec<Rational> = direction_bits
            .iter()
            .map(|&b| if b { int(1) } else { int(0) })
            .collect();
        let vf = parametric_rhs(&lp, &direction, int(0), int(3))
            .expect("covering LPs stay feasible and bounded along the ray");
        for (theta, stored) in &vf.breakpoints {
            let mut shifted = lp.clone();
            for (c, d) in shifted.constraints.iter_mut().zip(&direction) {
                c.rhs = &c.rhs + &(d * theta);
            }
            let fresh = solve(&shifted).expect("shifted LP solves").objective_value;
            prop_assert_eq!(stored, &fresh);
            prop_assert_eq!(vf.value_at(theta), fresh);
        }
    }

    #[test]
    fn scaling_objective_scales_optimum(lp in bounded_lp(3, 4), k in 1i64..5) {
        let base = solve(&lp).expect("solves");
        let mut scaled = lp.clone();
        for c in scaled.costs.iter_mut() {
            *c = &*c * &int(k);
        }
        let s = solve(&scaled).expect("scaled solves");
        prop_assert_eq!(s.objective_value, &base.objective_value * &int(k));
    }
}

#[test]
fn objective_sense_consistency() {
    // max(c·x) over a region equals -min(-c·x).
    let mut max_lp = LinearProgram::maximize(vec![int(2), ratio(1, 2)]);
    max_lp.add_constraint(Constraint::new(vec![int(1), int(1)], Relation::Le, int(3)));
    max_lp.add_constraint(Constraint::new(vec![int(1), int(0)], Relation::Le, int(2)));
    let mut min_lp = max_lp.clone();
    min_lp.objective = Objective::Minimize;
    min_lp.costs = min_lp.costs.iter().map(|c| -c).collect();
    let vmax = solve(&max_lp).unwrap().objective_value;
    let vmin = solve(&min_lp).unwrap().objective_value;
    assert_eq!(vmax, -vmin);
}

#[test]
fn infeasible_and_unbounded_are_distinguished() {
    let mut infeasible = LinearProgram::maximize(vec![int(1)]);
    infeasible.add_constraint(Constraint::new(vec![int(1)], Relation::Le, int(0)));
    infeasible.add_constraint(Constraint::new(vec![int(1)], Relation::Ge, int(1)));
    assert_eq!(solve(&infeasible), Err(LpError::Infeasible));

    let mut unbounded = LinearProgram::maximize(vec![int(1), int(0)]);
    unbounded.add_constraint(Constraint::new(vec![int(0), int(1)], Relation::Le, int(1)));
    assert_eq!(solve(&unbounded), Err(LpError::Unbounded));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn parametric_rhs_matches_cold_oracle(
        lp in covering_lp(4, 4),
        direction_bits in proptest::collection::vec(proptest::bool::ANY, 4),
    ) {
        // The warm-started 1-D value function must be bitwise-identical to
        // the all-cold-solves oracle: same breakpoints, same values.
        let direction: Vec<Rational> = direction_bits
            .iter()
            .map(|&b| if b { int(1) } else { int(0) })
            .collect();
        let warm = parametric_rhs(&lp, &direction, int(0), int(3))
            .expect("covering LPs stay feasible and bounded along the ray");
        let cold = parametric_rhs_cold(&lp, &direction, int(0), int(3))
            .expect("the cold oracle solves the same programs");
        prop_assert_eq!(warm, cold);
    }

    #[test]
    fn parametric_rhs_box_matches_cold_oracle(lp in covering_lp(4, 3)) {
        // The warm multiparametric surface must evaluate identically to the
        // all-cold oracle everywhere on the box (the documented contract —
        // the two may tile the box into different critical-region sets, e.g.
        // a degenerate boundary sliver, but the piecewise function is the
        // same). Raising a covering constraint's right-hand side keeps the
        // program feasible (any cover scales up) and bounded, so the whole
        // box is solvable.
        let m = lp.num_constraints();
        let unit = |i: usize| {
            let mut v = vec![Rational::zero(); m];
            v[i] = Rational::one();
            v
        };
        let directions = vec![unit(0), unit(1)];
        let domain = ParamBox::new(vec![int(0); 2], vec![int(1); 2])
            .expect("a unit box is a valid domain");
        let warm = parametric_rhs_box(&lp, &directions, &domain)
            .expect("covering LPs stay solvable over the box");
        let cold = parametric_rhs_box_cold(&lp, &directions, &domain)
            .expect("the cold oracle solves the same programs");
        // A quarter-step grid hits every corner and crosses every region of
        // these small surfaces.
        for i in 0..=4 {
            for j in 0..=4 {
                let p = [ratio(i, 4), ratio(j, 4)];
                prop_assert_eq!(warm.value_at(&p), cold.value_at(&p));
            }
        }
    }
}
