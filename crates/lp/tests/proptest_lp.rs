//! Property tests for the exact simplex solver.
//!
//! * Returned points are always exactly feasible and achieve the reported
//!   objective value.
//! * Strong duality: when both the primal and its explicitly-constructed dual
//!   have finite optima, the optimal values agree exactly.
//! * On bounded feasible regions (box constraints added), the solver never
//!   reports infeasibility or unboundedness.

use projtile_arith::{int, ratio, Rational};
use projtile_lp::{dual_program, solve, Constraint, LinearProgram, LpError, Objective, Relation};
use proptest::prelude::*;

/// Strategy: a random LP with `n` variables and `m` random `<=` constraints
/// with non-negative right-hand sides, plus a box `x_j <= box_bound` so the
/// problem is always feasible (x = 0) and bounded.
fn bounded_lp(n: usize, m: usize) -> impl Strategy<Value = LinearProgram> {
    let coeff = -3i64..=3i64;
    let costs = proptest::collection::vec(-5i64..=5i64, n);
    let rows = proptest::collection::vec(proptest::collection::vec(coeff, n), m);
    let rhs = proptest::collection::vec(0i64..=10i64, m);
    (costs, rows, rhs).prop_map(move |(costs, rows, rhs)| {
        let mut lp = LinearProgram::maximize(costs.into_iter().map(int).collect());
        for (row, b) in rows.into_iter().zip(rhs) {
            lp.add_constraint(Constraint::new(
                row.into_iter().map(int).collect(),
                Relation::Le,
                int(b),
            ));
        }
        // Box constraints keep the problem bounded.
        for j in 0..n {
            let mut coeffs = vec![Rational::zero(); n];
            coeffs[j] = Rational::one();
            lp.add_constraint(Constraint::new(coeffs, Relation::Le, int(7)));
        }
        lp
    })
}

/// Strategy: a "covering LP" shaped like the paper's HBL programs: minimize
/// `1ᵀs` subject to a random 0/1 matrix times `s >= 1`, where every row has at
/// least one `1` (so the program is feasible) — exactly the structure of LP
/// (3.1) for projective loop nests.
fn covering_lp(n: usize, d: usize) -> impl Strategy<Value = LinearProgram> {
    proptest::collection::vec(proptest::collection::vec(proptest::bool::ANY, n), d).prop_map(
        move |mut rows| {
            let mut lp = LinearProgram::minimize(vec![Rational::one(); n]);
            for row in rows.iter_mut() {
                if row.iter().all(|b| !b) {
                    row[0] = true;
                }
                lp.add_constraint(Constraint::new(
                    row.iter()
                        .map(|&b| if b { int(1) } else { int(0) })
                        .collect(),
                    Relation::Ge,
                    Rational::one(),
                ));
            }
            lp
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn bounded_lps_solve_and_are_feasible(lp in bounded_lp(4, 5)) {
        let sol = solve(&lp).expect("bounded feasible LP must solve");
        prop_assert!(lp.is_feasible(&sol.values));
        prop_assert_eq!(lp.objective_at(&sol.values), sol.objective_value.clone());
        // x = 0 is feasible with objective 0, so the max is >= 0.
        prop_assert!(sol.objective_value >= Rational::zero());
    }

    #[test]
    fn strong_duality_on_bounded_lps(lp in bounded_lp(3, 4)) {
        let p = solve(&lp).expect("primal solves");
        let dual = dual_program(&lp);
        let d = solve(&dual).expect("dual of a bounded feasible LP solves");
        prop_assert_eq!(p.objective_value, d.objective_value);
    }

    #[test]
    fn covering_lps_have_optimal_value_in_unit_range(lp in covering_lp(5, 5)) {
        // For 0/1 covering LPs with unit costs and d rows, the optimum lies in
        // (0, d] and the solution is a fractional cover.
        let sol = solve(&lp).expect("covering LP is feasible");
        prop_assert!(sol.objective_value > Rational::zero());
        prop_assert!(sol.objective_value <= int(lp.num_constraints() as i64));
        prop_assert!(lp.is_feasible(&sol.values));
        // Strong duality against the packing dual.
        let d = solve(&dual_program(&lp)).expect("packing dual solves");
        prop_assert_eq!(d.objective_value, sol.objective_value);
    }

    #[test]
    fn weak_duality_holds_for_feasible_dual_points(lp in bounded_lp(3, 3)) {
        // Any feasible dual point bounds the primal optimum from above
        // (maximization primal). Use the dual optimum perturbation 0 (itself).
        let p = solve(&lp).expect("primal solves");
        let dual = dual_program(&lp);
        if let Ok(d) = solve(&dual) {
            prop_assert!(d.objective_value >= p.objective_value.clone());
            prop_assert!(d.objective_value <= p.objective_value);
        }
    }

    #[test]
    fn scaling_objective_scales_optimum(lp in bounded_lp(3, 4), k in 1i64..5) {
        let base = solve(&lp).expect("solves");
        let mut scaled = lp.clone();
        for c in scaled.costs.iter_mut() {
            *c = &*c * &int(k);
        }
        let s = solve(&scaled).expect("scaled solves");
        prop_assert_eq!(s.objective_value, &base.objective_value * &int(k));
    }
}

#[test]
fn objective_sense_consistency() {
    // max(c·x) over a region equals -min(-c·x).
    let mut max_lp = LinearProgram::maximize(vec![int(2), ratio(1, 2)]);
    max_lp.add_constraint(Constraint::new(vec![int(1), int(1)], Relation::Le, int(3)));
    max_lp.add_constraint(Constraint::new(vec![int(1), int(0)], Relation::Le, int(2)));
    let mut min_lp = max_lp.clone();
    min_lp.objective = Objective::Minimize;
    min_lp.costs = min_lp.costs.iter().map(|c| -c).collect();
    let vmax = solve(&max_lp).unwrap().objective_value;
    let vmin = solve(&min_lp).unwrap().objective_value;
    assert_eq!(vmax, -vmin);
}

#[test]
fn infeasible_and_unbounded_are_distinguished() {
    let mut infeasible = LinearProgram::maximize(vec![int(1)]);
    infeasible.add_constraint(Constraint::new(vec![int(1)], Relation::Le, int(0)));
    infeasible.add_constraint(Constraint::new(vec![int(1)], Relation::Ge, int(1)));
    assert_eq!(solve(&infeasible), Err(LpError::Infeasible));

    let mut unbounded = LinearProgram::maximize(vec![int(1), int(0)]);
    unbounded.add_constraint(Constraint::new(vec![int(0), int(1)], Relation::Le, int(1)));
    assert_eq!(solve(&unbounded), Err(LpError::Unbounded));
}
