//! Adversarial-Rust tests for the lexer and parser: sources engineered so a
//! regex- or text-based scanner would misread them. The rules reason over
//! this token stream, so each case here is a false positive (or negative)
//! the lint would otherwise ship.

use projtile_lint::lexer::{lex, Tok};
use projtile_lint::parser::ParsedFile;

fn idents(src: &str) -> Vec<String> {
    lex(src)
        .tokens
        .into_iter()
        .filter_map(|t| match t.tok {
            Tok::Ident(s) => Some(s),
            _ => None,
        })
        .collect()
}

#[test]
fn panics_inside_strings_and_comments_are_not_idents() {
    let src = r###"
        // this comment says panic!("x") and .unwrap()
        /* and so does /* this nested */ one: unreachable!() */
        fn f() -> &'static str {
            let a = "panic!(\"quoted\") .unwrap()";
            let b = r#"raw panic!() with "quotes" inside"#;
            let c = br##"byte raw panic!() with "# inside"##;
            a
        }
    "###;
    let ids = idents(src);
    assert!(!ids
        .iter()
        .any(|i| i == "panic" || i == "unwrap" || i == "unreachable"));
    // The strings still arrive as Str tokens with their contents.
    let strings: Vec<String> = lex(src)
        .tokens
        .into_iter()
        .filter_map(|t| match t.tok {
            Tok::Str(s) => Some(s),
            _ => None,
        })
        .collect();
    assert_eq!(strings.len(), 3);
    assert!(strings[1].contains("raw panic!()"));
}

#[test]
fn lifetimes_are_not_char_literals() {
    let src = "fn f<'a>(x: &'a str) -> char { let q = 'q'; let esc = '\\''; q }";
    let lexed = lex(src);
    let lifetimes: Vec<&str> = lexed
        .tokens
        .iter()
        .filter_map(|t| match &t.tok {
            Tok::Lifetime(l) => Some(l.as_str()),
            _ => None,
        })
        .collect();
    assert_eq!(lifetimes, ["a", "a"]);
    let chars = lexed
        .tokens
        .iter()
        .filter(|t| matches!(t.tok, Tok::Char))
        .count();
    assert_eq!(chars, 2, "'q' and the escaped quote are char literals");
}

#[test]
fn raw_identifiers_lose_their_prefix() {
    let ids = idents("fn r#match(r#fn: u32) -> u32 { r#fn }");
    assert_eq!(ids, ["fn", "match", "fn", "u32", "u32", "fn"]);
}

#[test]
fn string_braces_do_not_confuse_fn_bodies() {
    // The `{` inside the string must not open a scope, or `g`'s body range
    // (and thus L002's enclosing-fn attribution) would be wrong.
    let src = "fn f() -> &'static str { \"unbalanced {{{ \" }\nfn g(x: Option<u32>) -> u32 { x.unwrap() }\n";
    let p = ParsedFile::parse(src);
    assert_eq!(
        p.fns.iter().map(|f| f.name.as_str()).collect::<Vec<_>>(),
        ["f", "g"]
    );
    let unwrap_at = p
        .tokens
        .iter()
        .position(|t| matches!(&t.tok, Tok::Ident(s) if s == "unwrap"))
        .expect("unwrap is a token");
    assert_eq!(p.enclosing_fn(unwrap_at).expect("inside a fn").name, "g");
}

#[test]
fn semicolons_in_array_types_do_not_end_items() {
    let src = "pub fn f(x: [u8; 4]) -> [u8; 4] { x }\n";
    let p = ParsedFile::parse(src);
    assert_eq!(p.fns.len(), 1);
    assert!(p.fns[0].is_pub);
    assert!(
        p.fns[0].body.is_some(),
        "the body after the array type is f's"
    );
}

#[test]
fn cfg_test_variants_mark_test_regions() {
    let src = "\
#[cfg(test)]\nmod a { fn t() { x.unwrap(); } }\n\
#[cfg(all(test, feature = \"x\"))]\nmod b { fn t() { y.unwrap(); } }\n\
#[cfg(feature = \"testing\")]\nmod c { fn t() { z.unwrap(); } }\n";
    let p = ParsedFile::parse(src);
    let unwraps: Vec<usize> = p
        .tokens
        .iter()
        .enumerate()
        .filter_map(|(i, t)| matches!(&t.tok, Tok::Ident(s) if s == "unwrap").then_some(i))
        .collect();
    assert_eq!(unwraps.len(), 3);
    assert!(p.in_test_code(unwraps[0]), "#[cfg(test)] is a test region");
    assert!(p.in_test_code(unwraps[1]), "#[cfg(all(test, ..))] too");
    assert!(
        !p.in_test_code(unwraps[2]),
        "`testing` as a feature name is not the word `test`"
    );
}

#[test]
fn allow_directives_require_reasons_and_adjacency() {
    let src = "\
// lint: allow(L002) justified here\n\
fn a() {}\n\
// lint: allow(L003)\n\
fn b() {}\n\
fn c() {} // lint: allow(L004) same line\n";
    let p = ParsedFile::parse(src);
    assert!(p.allowed("L002", 2), "directive on the line above applies");
    assert!(!p.allowed("L002", 4), "wrong rule id does not apply");
    assert!(
        !p.allowed("L003", 4),
        "a reasonless directive never applies"
    );
    assert!(p.allowed("L004", 5), "same-line directive applies");
    assert!(!p.allowed("L004", 1), "directives do not apply upward");
}

#[test]
fn doc_examples_are_comments_not_code() {
    // `///` doc lines (the usual home of `.unwrap()` examples) must lex as
    // comments so L002 never sees them.
    let src = "/// let v = x.unwrap();\n/// panic!(\"docs\");\npub fn documented() {}\n";
    let p = ParsedFile::parse(src);
    assert!(!p
        .tokens
        .iter()
        .any(|t| matches!(&t.tok, Tok::Ident(s) if s == "unwrap" || s == "panic")));
    assert_eq!(p.fns.len(), 1);
    assert_eq!(p.fns[0].name, "documented");
}
