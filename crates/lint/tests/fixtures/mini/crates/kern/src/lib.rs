//! Fixture kernel crate: outside the no-panic surface, so its panics only
//! matter when the call graph proves a surface function reaches them.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Reached from the surface; delegates to the panicking `inner` (the L008
/// finding lands on `inner`'s assert with a three-link chain).
pub fn risky(n: u64) -> u64 {
    inner(n)
}

fn inner(n: u64) -> u64 {
    assert!(n > 0, "fixture: seeded transitive panic");
    n
}

/// Clean: the allow on the `fn` line cuts every chain through this node.
// lint: allow(L008) fixture: small n cannot overflow, pinned by the caller's validation
pub fn vetted(n: u64) -> u64 {
    n.checked_add(1).expect("fixture: never overflows")
}
