//! Fixture service crate: the root is missing both hygiene attributes
//! (seeds L004 twice) and reads one undocumented env knob (seeds L006).

/// `PROJTILE_THREADS` is documented in the fixture runbook: clean.
pub fn threads() -> usize {
    match std::env::var("PROJTILE_THREADS") {
        Ok(v) => v.parse().unwrap_or(1),
        Err(_) => 1,
    }
}

/// `PROJTILE_WIDGETS` is not in the runbook: seeds L006.
pub fn widgets() -> usize {
    match std::env::var("PROJTILE_WIDGETS") {
        Ok(v) => v.parse().unwrap_or(0),
        Err(_) => 0,
    }
}
