//! Fixture bench sources: the workload names the fixture ci.sh may grep.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Emits one fixed name and one `format!`-templated family.
pub fn names(tag: &str) -> Vec<String> {
    vec!["bench/real_name".to_string(), format!("bench/warm/{tag}")]
}
