//! Fixture core crate: hygiene-clean root with one covered and one
//! uncovered oracle pair.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Warm path whose `_cold` oracle has no joint test (seeds L001).
pub fn fast_path() -> u32 {
    1
}

/// Cold oracle for `fast_path`: flagged, no test exercises the pair.
pub fn fast_path_cold() -> u32 {
    1
}

/// Warm path whose oracle pair IS covered by `tests/pairs.rs`.
pub fn covered() -> u32 {
    2
}

/// Cold oracle for `covered`: clean.
pub fn covered_cold() -> u32 {
    2
}

/// An oracle without a warm twin is not an L001 pair.
pub fn orphan_cold() -> u32 {
    3
}
