//! Fixture engine module: seeded L002 and L003 violations, plus the
//! negatives (allowed panic, test-code unwrap, guard dropped before the
//! expensive call) that must stay clean.

/// Seeds L002: a bare unwrap on the no-panic surface.
pub fn handle(input: Option<u32>) -> u32 {
    input.unwrap()
}

/// A justified allow directive suppresses the panic below.
pub fn guarded() -> u32 {
    // lint: allow(L002) fixture: this panic is the feature under test
    panic!("boom")
}

/// A reasonless allow directive does not count: still a finding.
pub fn reasonless(input: Option<u32>) -> u32 {
    // lint: allow(L002)
    input.expect("present")
}

fn solve_thing(x: u32) -> u32 {
    x
}

/// Seeds L003: the expensive call runs while the write guard is live.
pub fn compute_under_lock(lock: &std::sync::RwLock<u32>) -> u32 {
    let g = lock.write();
    let v = solve_thing(3);
    drop(g);
    v
}

/// Clean: the guard is dropped before the expensive call.
pub fn compute_after_drop(lock: &std::sync::RwLock<u32>) -> u32 {
    let g = lock.write();
    drop(g);
    solve_thing(4)
}

/// Clean: `panic!` inside a string literal is data, not a panic.
pub fn describes_panics() -> &'static str {
    "never calls panic!(...) or .unwrap() at runtime"
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_unwrap() {
        let v: Option<u32> = Some(1);
        assert_eq!(v.unwrap(), 1);
    }
}
