//! Fixture engine module: seeded L002 and L003 violations, plus the
//! negatives (allowed panic, test-code unwrap, guard dropped before the
//! expensive call) that must stay clean.

/// Seeds L002: a bare unwrap on the no-panic surface.
pub fn handle(input: Option<u32>) -> u32 {
    input.unwrap()
}

/// A justified allow directive suppresses the panic below.
pub fn guarded() -> u32 {
    // lint: allow(L002) fixture: this panic is the feature under test
    panic!("boom")
}

/// A reasonless allow directive does not count: still a finding.
pub fn reasonless(input: Option<u32>) -> u32 {
    // lint: allow(L002)
    input.expect("present")
}

fn solve_thing(x: u32) -> u32 {
    x
}

/// Seeds L003: the expensive call runs while the write guard is live.
pub fn compute_under_lock(lock: &std::sync::RwLock<u32>) -> u32 {
    let g = lock.write();
    let v = solve_thing(3);
    drop(g);
    v
}

/// Clean: the guard is dropped before the expensive call.
pub fn compute_after_drop(lock: &std::sync::RwLock<u32>) -> u32 {
    let g = lock.write();
    drop(g);
    solve_thing(4)
}

/// Clean: `panic!` inside a string literal is data, not a panic.
pub fn describes_panics() -> &'static str {
    "never calls panic!(...) or .unwrap() at runtime"
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_unwrap() {
        let v: Option<u32> = Some(1);
        assert_eq!(v.unwrap(), 1);
    }
}

/// Seeds L008: reaches `projtile_kern::inner`'s assert two calls away.
pub fn surface_entry(n: u64) -> u64 {
    projtile_kern::risky(n)
}

/// Clean: every chain through `vetted` is cut by the allow on its `fn` line.
pub fn surface_vetted(n: u64) -> u64 {
    projtile_kern::vetted(n)
}

/// Seeds L008: bare indexing on the surface itself (single-link chain).
pub fn first_item(xs: &[u64]) -> u64 {
    xs[0]
}

/// Clean: full-range slicing cannot panic.
pub fn whole(xs: &[u64]) -> &[u64] {
    &xs[..]
}

fn grab_write(lock: &std::sync::RwLock<u32>) -> u32 {
    let w = lock.write();
    *w
}

/// Seeds L009: `grab_write` acquires a second lock while the read guard is
/// live (a transitive read→write upgrade).
pub fn upgrade_under_read(lock: &std::sync::RwLock<u32>) -> u32 {
    let g = lock.read();
    let v = grab_write(lock);
    drop(g);
    v
}

/// Seeds L009: an in-place read→write upgrade, flagged explicitly.
pub fn upgrade_in_place(lock: &std::sync::RwLock<u32>) -> u32 {
    let g = lock.read();
    let w = lock.write();
    drop(w);
    drop(g);
    0
}

/// Seeds L009: blocking I/O while the write guard is live.
pub fn io_under_lock(lock: &std::sync::RwLock<u32>) -> u32 {
    let g = lock.write();
    let _ = std::fs::write("/tmp/fixture", "x");
    *g
}

/// Clean: the guard is dropped before the lock-taking helper runs.
pub fn upgrade_after_drop(lock: &std::sync::RwLock<u32>) -> u32 {
    let g = lock.read();
    drop(g);
    grab_write(lock)
}

/// Clean: the chained read guard is a temporary; `n` holds the result and
/// the guard dies at the statement's end, before the write.
pub fn peek_then_write(lock: &std::sync::RwLock<u32>) -> u32 {
    let n = lock.read().checked_add(1).unwrap_or(0);
    let w = lock.write();
    drop(w);
    n
}

/// Seeds L010: the allow below excuses nothing any more (stale).
pub fn tidy() -> u32 {
    // lint: allow(L002) fixture: stale — the unwrap this excused is gone
    7
}

/// Seeds L010: the allow names a rule id that is not in the catalog.
pub fn mislabeled() -> u32 {
    // lint: allow(L999) fixture: unknown rule id
    9
}
