//! Joint differential test for the covered oracle pair (satisfies L001 for
//! `covered` / `covered_cold`; `fast_path` is deliberately absent).

#[test]
fn covered_matches_cold() {
    assert_eq!(covered(), covered_cold());
}
