#!/usr/bin/env bash
# Fixture CI script: two valid smoke greps and one stale one (seeds L007).
set -euo pipefail
smoke_out="/tmp/smoke.txt"
grep -q "bench/real_name" "$smoke_out"
grep -q "bench/warm/p50" "$smoke_out"
grep -q "bench/stale_name" "$smoke_out"
