//! Golden tests: the fixture mini-workspace under `tests/fixtures/mini/`
//! seeds at least one violation (and at least one near-miss negative) for
//! every shipped rule; the full finding set — identities, lines, messages —
//! is pinned against `tests/fixtures/mini-expected.json`. The baseline and
//! CLI tests drive the same fixtures through the suppression machinery and
//! the installed binary.

use std::path::{Path, PathBuf};
use std::process::Command;

use projtile_lint::findings::to_json;
use projtile_lint::{run_lint, Baseline, Config, Finding};

fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/mini")
}

/// The fixture workspace's conventions: the repo config with the fixture's
/// own expensive function and no env-scan exclusions.
fn fixture_config() -> Config {
    Config {
        expensive_fns: vec!["solve_thing".to_string()],
        env_scan_exclude: Vec::new(),
        ..Config::repo()
    }
}

fn fixture_findings() -> Vec<Finding> {
    run_lint(&fixture_root(), &fixture_config()).expect("fixture workspace loads")
}

#[test]
fn fixture_findings_match_golden_json() {
    let findings = fixture_findings();
    let actual = to_json(
        &findings
            .iter()
            .map(|f| (f.clone(), false))
            .collect::<Vec<_>>(),
    );
    let expected_path =
        Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/mini-expected.json");
    if std::env::var_os("PROJTILE_LINT_UPDATE_GOLDEN").is_some() {
        std::fs::write(&expected_path, format!("{}\n", actual.trim()))
            .expect("golden file is writable");
    }
    let expected = std::fs::read_to_string(&expected_path).expect("golden file exists");
    assert_eq!(
        actual.trim(),
        expected.trim(),
        "fixture findings diverge from the golden file; if the change is \
         intended, update tests/fixtures/mini-expected.json"
    );
}

#[test]
fn every_shipped_rule_fires_on_the_fixture() {
    let findings = fixture_findings();
    for rule in [
        "L001", "L002", "L003", "L004", "L006", "L007", "L008", "L009", "L010",
    ] {
        assert!(
            findings.iter().any(|f| f.rule == rule),
            "rule {rule} produced no finding on the seeded fixture"
        );
    }
}

#[test]
fn fixture_negatives_stay_clean() {
    let findings = fixture_findings();
    // The justified allow suppresses `guarded`'s panic; the reasonless one
    // does not suppress `reasonless`'s expect.
    assert!(!findings.iter().any(|f| f.detail.starts_with("guarded::")));
    assert!(findings.iter().any(|f| f.detail == "reasonless::.expect()"));
    // Dropping the guard before the expensive call is clean.
    assert!(!findings
        .iter()
        .any(|f| f.detail.starts_with("compute_after_drop::")));
    // The covered oracle pair and the twinless oracle are clean.
    assert!(!findings
        .iter()
        .any(|f| f.rule == "L001" && (f.detail == "covered" || f.detail == "orphan")));
    // L008 negatives: the allow on `vetted`'s fn line cuts the chain from
    // `surface_vetted`, and full-range slicing is not an indexing sink.
    assert!(!findings
        .iter()
        .any(|f| f.chain.iter().any(|c| c.contains("surface_vetted"))));
    assert!(!findings.iter().any(|f| f.detail.starts_with("whole::")));
    // The L008 finding on the kern assert carries the full three-link chain.
    let transitive = findings
        .iter()
        .find(|f| f.detail == "inner::assert!")
        .expect("transitive panic is found");
    assert_eq!(transitive.chain.len(), 3);
    assert!(transitive.chain[0].contains("surface_entry"));
    // L009 negatives: guard dropped before the helper, and a chained
    // temporary guard that dies at its statement.
    assert!(!findings
        .iter()
        .any(|f| f.detail.starts_with("upgrade_after_drop::")));
    assert!(!findings
        .iter()
        .any(|f| f.detail.starts_with("peek_then_write::")));
    // The justified, consumed allows (guarded, vetted) are not L010 debt.
    assert!(!findings
        .iter()
        .any(|f| f.rule == "L010" && (f.line == 13 || f.path.contains("kern"))));
    // The documented env var and the valid smoke greps are clean.
    assert!(!findings.iter().any(|f| f.detail == "PROJTILE_THREADS"));
    assert!(!findings
        .iter()
        .any(|f| f.rule == "L007" && f.detail != "bench/stale_name"));
}

#[test]
fn baseline_suppresses_by_identity_not_line() {
    let findings = fixture_findings();
    let full = Baseline::parse(&Baseline::render(&findings)).expect("rendered baseline parses");
    assert!(findings.iter().all(|f| full.contains(f)));
    // A shifted line number still matches (identity is rule/path/detail).
    let mut moved = findings[0].clone();
    moved.line += 100;
    assert!(full.contains(&moved));

    // A partial baseline leaves exactly the unlisted findings gating.
    let partial =
        Baseline::parse(&Baseline::render(&findings[..3])).expect("partial baseline parses");
    let new: Vec<&Finding> = findings.iter().filter(|f| !partial.contains(f)).collect();
    assert_eq!(new.len(), findings.len() - 3);
}

#[test]
fn cli_gates_on_new_findings_and_respects_the_baseline() {
    let bin = env!("CARGO_BIN_EXE_projtile-lint");
    let root = fixture_root();
    // The fixture config is not the CLI default (different expensive fn), so
    // drive the CLI end-to-end on findings the default config also produces:
    // L004/L006/L007 need no config overrides.
    let out = Command::new(bin)
        .args(["--root", root.to_str().expect("utf8 path"), "--json"])
        .output()
        .expect("projtile-lint runs");
    assert_eq!(
        out.status.code(),
        Some(1),
        "seeded fixture must gate: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let json = String::from_utf8(out.stdout).expect("json output is utf8");
    assert!(json.contains("\"rule\": \"L006\""));
    assert!(json.contains("\"detail\": \"PROJTILE_WIDGETS\""));

    // Writing a baseline and re-running against it exits 0 with everything
    // suppressed.
    let baseline = std::env::temp_dir().join("projtile-lint-golden-baseline.txt");
    let out = Command::new(bin)
        .args([
            "--root",
            root.to_str().expect("utf8 path"),
            "--write-baseline",
            baseline.to_str().expect("utf8 path"),
        ])
        .output()
        .expect("projtile-lint writes a baseline");
    assert!(out.status.success());
    let out = Command::new(bin)
        .args([
            "--root",
            root.to_str().expect("utf8 path"),
            "--baseline",
            baseline.to_str().expect("utf8 path"),
        ])
        .output()
        .expect("projtile-lint runs against the baseline");
    assert_eq!(out.status.code(), Some(0));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("0 new"), "summary: {text}");
    std::fs::remove_file(&baseline).ok();
}

#[test]
fn missing_root_is_a_usage_error() {
    let bin = env!("CARGO_BIN_EXE_projtile-lint");
    let out = Command::new(bin)
        .args(["--root", "/nonexistent/projtile-lint-test"])
        .output()
        .expect("projtile-lint runs");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn explain_prints_the_catalog_entry() {
    let bin = env!("CARGO_BIN_EXE_projtile-lint");
    let repo_root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let root = repo_root.to_str().expect("utf8 path");
    let out = Command::new(bin)
        .args(["--root", root, "--explain", "L008"])
        .output()
        .expect("projtile-lint runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.starts_with("### L008"), "got: {text}");
    assert!(text.contains("call graph"));
    // Lowercase ids are normalized; unknown ids are usage errors (exit 2).
    let out = Command::new(bin)
        .args(["--root", root, "--explain", "l009"])
        .output()
        .expect("projtile-lint runs");
    assert!(out.status.success());
    let out = Command::new(bin)
        .args(["--root", root, "--explain", "L999"])
        .output()
        .expect("projtile-lint runs");
    assert_eq!(out.status.code(), Some(2));
}
