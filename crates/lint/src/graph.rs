//! Whole-workspace symbol table and call graph.
//!
//! Built on the token-level parser (no `syn`, no type inference), the graph
//! deliberately **over-approximates** dispatch so that reachability-based
//! rules (L008 transitive no-panic, L009 lock reachability) err toward
//! reporting:
//!
//! * free-function calls resolve through the file's module path and its
//!   flattened `use` declarations (groups, renames, and globs included);
//! * `Type::method(...)` resolves to every inherent/trait method of that
//!   name on that type name, anywhere in the workspace;
//! * `.method(...)` receiver calls resolve to **every** workspace method of
//!   that name (trait-object and generic dispatch cannot be narrowed without
//!   types, so all candidates get edges) — with two precision refinements:
//!   `self.method(...)` inside an `impl` block whose type has that inherent
//!   method resolves to exactly it, and names that shadow ubiquitous std
//!   container/iterator methods ([`STD_SHADOWED_METHODS`]: `len`, `iter`,
//!   `get`, …) never dispatch by name alone — on those, `vec.len()` edging
//!   to every workspace `len` drowns real findings in noise, so they
//!   require a typed receiver (`Type::m` or a narrowed `self.m`);
//! * a bare identifier naming a resolvable workspace fn (a fn-pointer or
//!   closure-captured reference, e.g. `par_map_with(xs, compute_detached)`)
//!   gets an edge, since the callee may run it.
//!
//! Code inside `#[cfg(test)]` regions and files under any `tests/` directory
//! contributes **no nodes and no edges**: panics there are the point.
//!
//! Cycles (mutual recursion) are handled by Tarjan SCC condensation:
//! [`CallGraph::reach_flags`] computes "this fn can reach a flagged fn"
//! summaries in one pass over the condensed DAG, and
//! [`CallGraph::bfs_parents`] recovers shortest call chains for findings.

use std::collections::HashMap;

use crate::lexer::Tok;
use crate::workspace::{Source, Workspace};

/// Method names that shadow ubiquitous `std` container/iterator/string APIs.
/// An untyped `.m(...)` call on one of these is almost always the std method
/// (`Vec::len`, `HashMap::insert`, …), so name-only dispatch would wire every
/// `vec.len()` in the workspace to every type that happens to define `len`.
/// These names only resolve through a typed receiver: `Type::m(...)` or
/// `self.m(...)` inside the defining impl.
pub const STD_SHADOWED_METHODS: [&str; 24] = [
    "len",
    "is_empty",
    "get",
    "get_mut",
    "iter",
    "iter_mut",
    "into_iter",
    "contains",
    "contains_key",
    "insert",
    "remove",
    "push",
    "pop",
    "clear",
    "clone",
    "next",
    "extend",
    "keys",
    "values",
    "entry",
    "drain",
    "retain",
    "last",
    "first",
];

/// What kind of lock guard a helper returns (from its return-type idents).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GuardKind {
    /// Shared (`RwLockReadGuard`).
    Read,
    /// Exclusive (`RwLockWriteGuard`, `MutexGuard`).
    Write,
}

/// One function in the graph.
#[derive(Debug)]
pub struct FnNode {
    /// Index into `Workspace::sources` of the defining file.
    pub src: usize,
    /// Bare function name.
    pub name: String,
    /// Qualified display name, e.g. `projtile_core::engine::SharedEngine::analyze`.
    pub qual: String,
    /// Self type if this is a method in an `impl` block.
    pub self_type: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Body token range in the file's token stream (`{` and `}` indices).
    pub body: (usize, usize),
    /// `Some` if the return type names a lock guard — the L003/L009 signal
    /// that calling this helper acquires a lock at the call site.
    pub guard_ret: Option<GuardKind>,
}

/// One call edge out of a function.
#[derive(Debug, Clone, Copy)]
pub struct CallSite {
    /// Callee node id.
    pub callee: usize,
    /// 1-based line of the call token in the caller's file.
    pub line: u32,
    /// Token index of the callee name in the caller's file.
    pub token: usize,
}

/// The workspace call graph.
pub struct CallGraph {
    /// All in-graph functions.
    pub nodes: Vec<FnNode>,
    /// Out-edges per node (indexed by node id).
    pub edges: Vec<Vec<CallSite>>,
    /// Method candidates by bare name (nodes with a self type).
    pub methods_by_name: HashMap<String, Vec<usize>>,
    /// Node ids per source index (same order as `Workspace::sources`).
    pub nodes_of_src: HashMap<usize, Vec<usize>>,
}

/// Per-file resolution context captured during construction.
struct FileCtx {
    /// Crate ident this file belongs to (`projtile_core`, `serde`, …).
    krate: String,
    /// File-level module path (from the path under `src/`).
    module: Vec<String>,
}

/// Directories whose sources never enter the graph (the linter itself is a
/// dev-tool, not linked into the service or kernels).
fn excluded(path: &str, exclude: &[String]) -> bool {
    exclude.iter().any(|d| {
        path.starts_with(d.as_str()) && matches!(path.as_bytes().get(d.len()), None | Some(b'/'))
    })
}

/// Whether `path` is an in-graph library/binary source.
fn in_graph_scope(path: &str) -> bool {
    (path.starts_with("src/")
        || path.starts_with("shims/")
        || (path.starts_with("crates/") && path.contains("/src/")))
        && !path.split('/').any(|seg| seg == "tests")
}

/// Derives (crate ident, file-level module path) from a workspace-relative
/// path: `crates/core/src/engine/shared.rs` → (`projtile_core`,
/// `[engine, shared]`); `mod.rs`/`lib.rs`/`main.rs` name their directory.
fn file_ctx(path: &str) -> Option<FileCtx> {
    let (krate, rest) = if let Some(rest) = path.strip_prefix("src/") {
        ("projtile".to_string(), rest)
    } else if let Some(rest) = path.strip_prefix("shims/") {
        let (shim, tail) = rest.split_once('/')?;
        let tail = tail.strip_prefix("src/").unwrap_or(tail);
        (shim.replace('-', "_"), tail)
    } else if let Some(rest) = path.strip_prefix("crates/") {
        let (dir, tail) = rest.split_once('/')?;
        let tail = tail.strip_prefix("src/")?;
        if let Some(bin) = tail.strip_prefix("bin/") {
            // Binary crates are standalone roots; give each a unique ident
            // so `crate::` inside them never aliases the library.
            let stem = bin.strip_suffix(".rs").unwrap_or(bin);
            return Some(FileCtx {
                krate: format!("bin_{}", stem.replace('-', "_")),
                module: Vec::new(),
            });
        }
        (format!("projtile_{}", dir.replace('-', "_")), tail)
    } else {
        return None;
    };
    let mut module: Vec<String> = rest
        .trim_end_matches(".rs")
        .split('/')
        .map(str::to_string)
        .collect();
    match module.last().map(String::as_str) {
        Some("lib") | Some("main") | Some("mod") => {
            module.pop();
        }
        _ => {}
    }
    Some(FileCtx { krate, module })
}

impl CallGraph {
    /// Builds the graph over every in-scope source of `ws`, excluding files
    /// under any of `exclude` (workspace-relative directory prefixes).
    pub fn build(ws: &Workspace, exclude: &[String]) -> CallGraph {
        let mut nodes: Vec<FnNode> = Vec::new();
        let mut nodes_of_src: HashMap<usize, Vec<usize>> = HashMap::new();
        let mut ctxs: HashMap<usize, FileCtx> = HashMap::new();

        // Pass 1: nodes and resolution maps.
        let mut free: HashMap<(String, String, String), usize> = HashMap::new();
        let mut crate_free: HashMap<(String, String), Vec<usize>> = HashMap::new();
        let mut methods: HashMap<(String, String), Vec<usize>> = HashMap::new();
        let mut methods_by_name: HashMap<String, Vec<usize>> = HashMap::new();
        let mut file_fns: HashMap<(usize, String), Vec<usize>> = HashMap::new();
        let mut crate_idents: HashMap<String, ()> = HashMap::new();

        for (si, src) in ws.sources.iter().enumerate() {
            if !in_graph_scope(&src.path) || excluded(&src.path, exclude) {
                continue;
            }
            let Some(ctx) = file_ctx(&src.path) else {
                continue;
            };
            crate_idents.insert(ctx.krate.clone(), ());
            for f in &src.parsed.fns {
                let Some(body) = f.body else { continue };
                if src.parsed.in_test_code(body.0) {
                    continue;
                }
                let mut mods = ctx.module.clone();
                mods.extend(f.module.iter().cloned());
                let mut qual = ctx.krate.clone();
                for m in &mods {
                    qual.push_str("::");
                    qual.push_str(m);
                }
                if let Some(t) = &f.self_type {
                    qual.push_str("::");
                    qual.push_str(t);
                }
                qual.push_str("::");
                qual.push_str(&f.name);
                let guard_ret = guard_kind_of(&f.ret_idents);
                let id = nodes.len();
                nodes.push(FnNode {
                    src: si,
                    name: f.name.clone(),
                    qual,
                    self_type: f.self_type.clone(),
                    line: f.line,
                    body,
                    guard_ret,
                });
                nodes_of_src.entry(si).or_default().push(id);
                file_fns.entry((si, f.name.clone())).or_default().push(id);
                crate_free
                    .entry((ctx.krate.clone(), f.name.clone()))
                    .or_default()
                    .push(id);
                if let Some(t) = &f.self_type {
                    methods
                        .entry((t.clone(), f.name.clone()))
                        .or_default()
                        .push(id);
                    methods_by_name.entry(f.name.clone()).or_default().push(id);
                } else {
                    let key = (ctx.krate.clone(), mods.join("::"), f.name.clone());
                    free.insert(key, id);
                }
            }
            ctxs.insert(si, ctx);
        }

        // Pass 2: edges.
        let resolver = Resolver {
            free,
            crate_free,
            methods,
            crate_idents,
        };
        let mut edges: Vec<Vec<CallSite>> = vec![Vec::new(); nodes.len()];
        for id in 0..nodes.len() {
            let si = nodes[id].src;
            let src = &ws.sources[si];
            let ctx = &ctxs[&si];
            // Child fn bodies nested inside this body get their own nodes;
            // skip their token ranges so calls attribute to the inner fn.
            let (bs, be) = nodes[id].body;
            let children: Vec<(usize, usize)> = nodes_of_src[&si]
                .iter()
                .map(|&c| nodes[c].body)
                .filter(|&(cs, ce)| bs < cs && ce < be)
                .collect();
            let mut out = Vec::new();
            collect_edges(
                src,
                si,
                ctx,
                nodes[id].self_type.as_deref(),
                (bs, be),
                &children,
                &resolver,
                &methods_by_name,
                &file_fns,
                &mut out,
            );
            edges[id] = out;
        }

        CallGraph {
            nodes,
            edges,
            methods_by_name,
            nodes_of_src,
        }
    }

    /// All nodes defined in files under any of `dirs`.
    pub fn nodes_under<'a>(
        &'a self,
        ws: &'a Workspace,
        dirs: &'a [String],
    ) -> impl Iterator<Item = usize> + 'a {
        (0..self.nodes.len())
            .filter(move |&id| dirs.iter().any(|d| ws.sources[self.nodes[id].src].under(d)))
    }

    /// Tarjan SCC condensation over the edge subset accepted by `edge_ok`.
    /// Components come out in reverse topological order (callees first).
    pub fn condensation(&self, edge_ok: &dyn Fn(usize, &CallSite) -> bool) -> Condensation {
        let n = self.nodes.len();
        let mut index = vec![usize::MAX; n];
        let mut low = vec![0usize; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<usize> = Vec::new();
        let mut comp_of = vec![usize::MAX; n];
        let mut comps: Vec<Vec<usize>> = Vec::new();
        let mut next = 0usize;

        // Iterative Tarjan (explicit frame stack: node + edge cursor).
        for start in 0..n {
            if index[start] != usize::MAX {
                continue;
            }
            let mut frames: Vec<(usize, usize)> = vec![(start, 0)];
            while let Some(&mut (v, ref mut ei)) = frames.last_mut() {
                if *ei == 0 {
                    index[v] = next;
                    low[v] = next;
                    next += 1;
                    stack.push(v);
                    on_stack[v] = true;
                }
                let mut descended = false;
                while *ei < self.edges[v].len() {
                    let e = self.edges[v][*ei];
                    *ei += 1;
                    if !edge_ok(v, &e) {
                        continue;
                    }
                    let w = e.callee;
                    if index[w] == usize::MAX {
                        frames.push((w, 0));
                        descended = true;
                        break;
                    } else if on_stack[w] {
                        low[v] = low[v].min(index[w]);
                    }
                }
                if descended {
                    continue;
                }
                // v is finished.
                if low[v] == index[v] {
                    let mut comp = Vec::new();
                    while let Some(w) = stack.pop() {
                        on_stack[w] = false;
                        comp_of[w] = comps.len();
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    comps.push(comp);
                }
                frames.pop();
                if let Some(&mut (p, _)) = frames.last_mut() {
                    low[p] = low[p].min(low[v]);
                }
            }
        }
        Condensation { comp_of, comps }
    }

    /// Computes per-node reachability flags: `out[v]` is true iff `v` can
    /// reach (through edges accepted by `edge_ok`, including zero steps) a
    /// node with `direct[w]` set. Cycle-safe via SCC condensation.
    pub fn reach_flags(
        &self,
        direct: &[bool],
        edge_ok: &dyn Fn(usize, &CallSite) -> bool,
    ) -> Vec<bool> {
        let cond = self.condensation(edge_ok);
        let mut comp_flag = vec![false; cond.comps.len()];
        // Components arrive callees-first, so one pass suffices.
        for (ci, comp) in cond.comps.iter().enumerate() {
            let mut flag = comp.iter().any(|&v| direct[v]);
            if !flag {
                'scan: for &v in comp {
                    for e in &self.edges[v] {
                        if edge_ok(v, e) && comp_flag[cond.comp_of[e.callee]] {
                            flag = true;
                            break 'scan;
                        }
                    }
                }
            }
            comp_flag[ci] = flag;
        }
        (0..self.nodes.len())
            .map(|v| comp_flag[cond.comp_of[v]])
            .collect()
    }

    /// Multi-source BFS. `parents[v]` is `Some((caller, line))` once reached
    /// (`(v, 0)` for the starts themselves); `None` if unreachable.
    pub fn bfs_parents(
        &self,
        starts: &[usize],
        edge_ok: &dyn Fn(usize, &CallSite) -> bool,
    ) -> Vec<Option<(usize, u32)>> {
        let mut parents: Vec<Option<(usize, u32)>> = vec![None; self.nodes.len()];
        let mut queue = std::collections::VecDeque::new();
        for &s in starts {
            if parents[s].is_none() {
                parents[s] = Some((s, 0));
                queue.push_back(s);
            }
        }
        while let Some(v) = queue.pop_front() {
            for e in &self.edges[v] {
                if parents[e.callee].is_none() && edge_ok(v, e) {
                    parents[e.callee] = Some((v, e.line));
                    queue.push_back(e.callee);
                }
            }
        }
        parents
    }

    /// Reconstructs the call chain from a BFS start down to `node`:
    /// `[(start, 0), …, (node, line-of-the-call-into-node)]`.
    pub fn chain_to(&self, parents: &[Option<(usize, u32)>], node: usize) -> Vec<(usize, u32)> {
        let mut chain = vec![];
        let mut v = node;
        while let Some((p, line)) = parents[v] {
            chain.push((v, line));
            if p == v {
                break;
            }
            v = p;
        }
        chain.reverse();
        chain
    }

    /// Renders a chain as `a -> b -> c` using qualified names.
    pub fn chain_display(&self, chain: &[(usize, u32)]) -> String {
        chain
            .iter()
            .map(|&(v, _)| self.nodes[v].qual.as_str())
            .collect::<Vec<_>>()
            .join(" -> ")
    }
}

/// SCC condensation result.
pub struct Condensation {
    /// Component id per node.
    pub comp_of: Vec<usize>,
    /// Members per component, in reverse topological order (callees first).
    pub comps: Vec<Vec<usize>>,
}

/// Guard kind implied by a return type's identifiers, if any.
fn guard_kind_of(ret_idents: &[String]) -> Option<GuardKind> {
    let mut kind = None;
    for id in ret_idents {
        if id.contains("Guard") {
            if id.contains("Read") {
                kind.get_or_insert(GuardKind::Read);
            } else {
                return Some(GuardKind::Write);
            }
        }
    }
    kind
}

/// Name-resolution maps shared across pass 2.
struct Resolver {
    free: HashMap<(String, String, String), usize>,
    crate_free: HashMap<(String, String), Vec<usize>>,
    methods: HashMap<(String, String), Vec<usize>>,
    crate_idents: HashMap<String, ()>,
}

impl Resolver {
    /// Resolves a `::`-separated path ending in a call, to candidate nodes.
    fn resolve_path(&self, segs: &[String], ctx: &FileCtx, src: &Source) -> Vec<usize> {
        let n = segs.len();
        if n == 0 {
            return Vec::new();
        }
        let name = &segs[n - 1];
        // `Type::method` / `…::Type::method` — type names are capitalized.
        if n >= 2 {
            let prev = &segs[n - 2];
            if prev.chars().next().is_some_and(char::is_uppercase) {
                if let Some(ids) = self.methods.get(&(prev.clone(), name.clone())) {
                    return ids.clone();
                }
                return Vec::new();
            }
        }
        // Expand a leading `use` alias once: `json::parse` where
        // `use serde::json;` maps json → serde::json.
        if n >= 2 {
            let s0 = &segs[0];
            if !matches!(s0.as_str(), "crate" | "self" | "super")
                && !self.crate_idents.contains_key(s0)
            {
                if let Some(u) = src.parsed.uses.iter().find(|u| &u.alias == s0) {
                    let mut expanded = u.path.clone();
                    expanded.extend(segs[1..].iter().cloned());
                    return self.resolve_absolute(&expanded, ctx);
                }
            }
        }
        self.resolve_absolute(segs, ctx)
    }

    /// Resolves a path whose leading segment is `crate`/`self`/`super`, a
    /// known crate ident, or a module relative to the current file.
    fn resolve_absolute(&self, segs: &[String], ctx: &FileCtx) -> Vec<usize> {
        let n = segs.len();
        let name = segs[n - 1].clone();
        // Re-check for a type segment after alias expansion.
        if n >= 2 && segs[n - 2].chars().next().is_some_and(char::is_uppercase) {
            return self
                .methods
                .get(&(segs[n - 2].clone(), name))
                .cloned()
                .unwrap_or_default();
        }
        let (krate, mods): (String, Vec<String>) = match segs[0].as_str() {
            "crate" => (ctx.krate.clone(), segs[1..n - 1].to_vec()),
            "self" => {
                let mut m = ctx.module.clone();
                m.extend(segs[1..n - 1].iter().cloned());
                (ctx.krate.clone(), m)
            }
            "super" => {
                let mut m = ctx.module.clone();
                let mut rest = 0usize;
                while rest < n - 1 && segs[rest] == "super" {
                    m.pop();
                    rest += 1;
                }
                m.extend(segs[rest..n - 1].iter().cloned());
                (ctx.krate.clone(), m)
            }
            s0 if self.crate_idents.contains_key(s0) => (s0.to_string(), segs[1..n - 1].to_vec()),
            _ => {
                // Relative: try as a submodule of the current module, then
                // as a crate-root module.
                let mut m = ctx.module.clone();
                m.extend(segs[..n - 1].iter().cloned());
                if let Some(&id) = self
                    .free
                    .get(&(ctx.krate.clone(), m.join("::"), name.clone()))
                {
                    return vec![id];
                }
                (ctx.krate.clone(), segs[..n - 1].to_vec())
            }
        };
        if let Some(&id) = self
            .free
            .get(&(krate.clone(), mods.join("::"), name.clone()))
        {
            return vec![id];
        }
        // Crate matched but the exact module didn't (re-exports, inline
        // modules): fall back to every free fn of that name in the crate.
        self.crate_free
            .get(&(krate, name))
            .cloned()
            .unwrap_or_default()
    }
}

/// Keywords and binders after which an identifier is a definition or
/// binding, never a function reference.
fn binder_before(tok: Option<&Tok>) -> bool {
    matches!(
        tok,
        Some(Tok::Ident(s)) if matches!(
            s.as_str(),
            "fn" | "mod" | "struct" | "enum" | "trait" | "type" | "use" | "let" | "for"
                | "impl" | "as" | "pub" | "crate" | "mut" | "ref" | "dyn" | "where" | "loop"
        )
    )
}

/// Walks one fn body, emitting call edges into `out`.
#[allow(clippy::too_many_arguments)]
fn collect_edges(
    src: &Source,
    si: usize,
    ctx: &FileCtx,
    self_ty: Option<&str>,
    body: (usize, usize),
    children: &[(usize, usize)],
    resolver: &Resolver,
    methods_by_name: &HashMap<String, Vec<usize>>,
    file_fns: &HashMap<(usize, String), Vec<usize>>,
    out: &mut Vec<CallSite>,
) {
    let tokens = &src.parsed.tokens;
    let (bs, be) = body;
    let mut i = bs + 1;
    while i < be {
        // Skip nested child fn bodies entirely.
        if let Some(&(_, ce)) = children.iter().find(|&&(cs, _)| cs == i) {
            i = ce + 1;
            continue;
        }
        let Tok::Ident(name) = &tokens[i].tok else {
            i += 1;
            continue;
        };
        let line = tokens[i].line;
        let next = tokens.get(i + 1).map(|t| &t.tok);
        let prev = if i > 0 {
            Some(&tokens[i - 1].tok)
        } else {
            None
        };
        let push_all = |ids: &[usize], out: &mut Vec<CallSite>| {
            for &callee in ids {
                out.push(CallSite {
                    callee,
                    line,
                    token: i,
                });
            }
        };
        if matches!(next, Some(Tok::Punct('('))) {
            match prev {
                Some(Tok::Punct('.')) => {
                    // Receiver method call. `self.m(...)` inside an impl
                    // whose type defines `m` resolves exactly; otherwise all
                    // workspace methods of this name are candidates
                    // (conservative dispatch) — except std-shadowed names,
                    // which never dispatch by name alone.
                    let on_self = matches!(
                        tokens.get(i.wrapping_sub(2)).map(|t| &t.tok),
                        Some(Tok::Ident(s)) if s == "self"
                    );
                    let narrowed = if on_self {
                        self_ty.and_then(|t| resolver.methods.get(&(t.to_string(), name.clone())))
                    } else {
                        None
                    };
                    if let Some(ids) = narrowed {
                        push_all(ids, out);
                    } else if !STD_SHADOWED_METHODS.contains(&name.as_str()) {
                        if let Some(ids) = methods_by_name.get(name) {
                            push_all(ids, out);
                        }
                    }
                }
                Some(Tok::Punct('!')) => {} // macro name, not a call
                Some(Tok::Punct(':'))
                    if matches!(
                        tokens.get(i.wrapping_sub(2)).map(|t| &t.tok),
                        Some(Tok::Punct(':'))
                    ) =>
                {
                    // Qualified path call: walk back to collect segments.
                    let mut segs = vec![name.clone()];
                    let mut k = i;
                    while k >= 3
                        && matches!(tokens[k - 1].tok, Tok::Punct(':'))
                        && matches!(tokens[k - 2].tok, Tok::Punct(':'))
                    {
                        if let Tok::Ident(s) = &tokens[k - 3].tok {
                            segs.insert(0, s.clone());
                            k -= 3;
                        } else {
                            break;
                        }
                    }
                    push_all(&resolver.resolve_path(&segs, ctx, src), out);
                }
                _ => {
                    // Unqualified call: same file first, then `use` aliases,
                    // then glob imports.
                    if let Some(ids) = file_fns.get(&(si, name.clone())) {
                        push_all(ids, out);
                    } else if let Some(u) = src.parsed.uses.iter().find(|u| &u.alias == name) {
                        push_all(&resolver.resolve_absolute(&u.path, ctx), out);
                    } else {
                        for u in src.parsed.uses.iter().filter(|u| u.alias == "*") {
                            let mut p = u.path.clone();
                            p.push(name.clone());
                            push_all(&resolver.resolve_absolute(&p, ctx), out);
                        }
                    }
                }
            }
        } else if name.chars().next().is_some_and(char::is_lowercase)
            && !matches!(next, Some(Tok::Punct(':')) | Some(Tok::Punct('!')))
            && !matches!(prev, Some(Tok::Punct('.')) | Some(Tok::Punct(':')))
            && !binder_before(prev)
        {
            // Bare identifier: a fn reference if it resolves exactly
            // (same file or a non-glob `use`) — fn pointers / closures.
            if let Some(ids) = file_fns.get(&(si, name.clone())) {
                push_all(ids, out);
            } else if let Some(u) = src.parsed.uses.iter().find(|u| &u.alias == name) {
                push_all(&resolver.resolve_absolute(&u.path, ctx), out);
            }
        }
        i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::ParsedFile;
    use std::path::PathBuf;

    fn ws_of(files: &[(&str, &str)]) -> Workspace {
        Workspace {
            root: PathBuf::from("/nonexistent"),
            sources: files
                .iter()
                .map(|(p, s)| Source {
                    path: p.to_string(),
                    parsed: ParsedFile::parse(s),
                })
                .collect(),
            ci_script: None,
            env_registry: None,
        }
    }

    fn node(g: &CallGraph, name: &str) -> usize {
        g.nodes.iter().position(|n| n.name == name).unwrap()
    }

    fn callees(g: &CallGraph, id: usize) -> Vec<String> {
        let mut v: Vec<String> = g.edges[id]
            .iter()
            .map(|e| g.nodes[e.callee].qual.clone())
            .collect();
        v.sort();
        v.dedup();
        v
    }

    #[test]
    fn file_ctx_derives_crate_and_module() {
        let c = file_ctx("crates/core/src/engine/shared.rs").unwrap();
        assert_eq!(c.krate, "projtile_core");
        assert_eq!(c.module, ["engine", "shared"]);
        let c = file_ctx("crates/core/src/engine/mod.rs").unwrap();
        assert_eq!(c.module, ["engine"]);
        let c = file_ctx("crates/lp/src/lib.rs").unwrap();
        assert_eq!(c.krate, "projtile_lp");
        assert!(c.module.is_empty());
        let c = file_ctx("shims/parking_lot/src/lib.rs").unwrap();
        assert_eq!(c.krate, "parking_lot");
        let c = file_ctx("crates/service/src/bin/projtile-serve.rs").unwrap();
        assert_eq!(c.krate, "bin_projtile_serve");
        let c = file_ctx("src/lib.rs").unwrap();
        assert_eq!(c.krate, "projtile");
    }

    #[test]
    fn cross_crate_paths_and_use_aliases_resolve() {
        let ws = ws_of(&[
            (
                "crates/lp/src/lib.rs",
                "pub fn solve() { helper(); }\npub fn helper() {}\n",
            ),
            (
                "crates/core/src/lib.rs",
                "use projtile_lp::solve as lp_solve;\n\
                 pub fn direct() { projtile_lp::solve(); }\n\
                 pub fn aliased() { lp_solve(); }\n",
            ),
        ]);
        let g = CallGraph::build(&ws, &[]);
        assert_eq!(callees(&g, node(&g, "direct")), ["projtile_lp::solve"]);
        assert_eq!(callees(&g, node(&g, "aliased")), ["projtile_lp::solve"]);
        assert_eq!(callees(&g, node(&g, "solve")), ["projtile_lp::helper"]);
    }

    #[test]
    fn method_calls_resolve_conservatively_across_types() {
        let ws = ws_of(&[
            (
                "crates/a/src/lib.rs",
                "pub struct X;\nimpl X { pub fn go(&self) {} }\n\
                 pub struct Y;\nimpl Y { pub fn go(&self) {} }\n",
            ),
            (
                "crates/b/src/lib.rs",
                "pub fn caller(v: &dyn std::any::Any) { v.go(); }\n\
                 pub fn typed() { projtile_a::X::go(); }\n",
            ),
        ]);
        let g = CallGraph::build(&ws, &[]);
        // `.go()` cannot be narrowed: both X::go and Y::go get edges.
        assert_eq!(
            callees(&g, node(&g, "caller")),
            ["projtile_a::X::go", "projtile_a::Y::go"]
        );
        // `X::go()` narrows to the one type.
        assert_eq!(callees(&g, node(&g, "typed")), ["projtile_a::X::go"]);
    }

    #[test]
    fn cfg_test_code_contributes_no_nodes_or_edges() {
        let ws = ws_of(&[(
            "crates/a/src/lib.rs",
            "pub fn prod() {}\n\
             #[cfg(test)]\nmod tests {\n    fn helper() { super::prod(); }\n}\n",
        )]);
        let g = CallGraph::build(&ws, &[]);
        assert_eq!(g.nodes.len(), 1);
        assert!(g.edges[0].is_empty());
    }

    #[test]
    fn mutual_recursion_condenses_and_reaches() {
        let ws = ws_of(&[(
            "crates/a/src/lib.rs",
            "pub fn even(n: u64) -> bool { if n == 0 { true } else { odd(n - 1) } }\n\
             pub fn odd(n: u64) -> bool { if n == 0 { false } else { even(n - 1) } }\n\
             pub fn sink() { panic!(\"boom\"); }\n\
             pub fn entry(n: u64) { if even(n) { sink(); } }\n",
        )]);
        let g = CallGraph::build(&ws, &[]);
        let every_edge = |_: usize, _: &CallSite| true;
        let cond = g.condensation(&every_edge);
        // even/odd share a component.
        assert_eq!(
            cond.comp_of[node(&g, "even")],
            cond.comp_of[node(&g, "odd")]
        );
        let mut direct = vec![false; g.nodes.len()];
        direct[node(&g, "sink")] = true;
        let reach = g.reach_flags(&direct, &every_edge);
        assert!(reach[node(&g, "entry")]);
        assert!(reach[node(&g, "sink")]);
        assert!(!reach[node(&g, "even")]);
        let parents = g.bfs_parents(&[node(&g, "entry")], &every_edge);
        let chain = g.chain_to(&parents, node(&g, "sink"));
        assert_eq!(
            g.chain_display(&chain),
            "projtile_a::entry -> projtile_a::sink"
        );
    }

    #[test]
    fn bare_fn_reference_gets_an_edge() {
        let ws = ws_of(&[(
            "crates/a/src/lib.rs",
            "pub fn work(x: u64) -> u64 { x }\n\
             pub fn driver(xs: &[u64]) { run_with(xs, work); }\n\
             fn run_with(xs: &[u64], f: fn(u64) -> u64) { for &x in xs { f(x); } }\n",
        )]);
        let g = CallGraph::build(&ws, &[]);
        let c = callees(&g, node(&g, "driver"));
        assert!(c.contains(&"projtile_a::work".to_string()));
        assert!(c.contains(&"projtile_a::run_with".to_string()));
    }

    #[test]
    fn guard_returning_helper_is_detected() {
        let ws = ws_of(&[(
            "crates/a/src/lib.rs",
            "impl Pool {\n\
               fn wshard(&self, i: usize) -> RwLockWriteGuard<'_, E> { self.s[i].write() }\n\
               fn rshard(&self, i: usize) -> RwLockReadGuard<'_, E> { self.s[i].read() }\n\
               fn plain(&self) -> usize { 0 }\n\
             }\n",
        )]);
        let g = CallGraph::build(&ws, &[]);
        assert_eq!(
            g.nodes[node(&g, "wshard")].guard_ret,
            Some(GuardKind::Write)
        );
        assert_eq!(g.nodes[node(&g, "rshard")].guard_ret, Some(GuardKind::Read));
        assert_eq!(g.nodes[node(&g, "plain")].guard_ret, None);
    }

    #[test]
    fn glob_imports_resolve_free_fns() {
        let ws = ws_of(&[
            ("crates/a/src/util.rs", "pub fn tidy() {}\n"),
            (
                "crates/a/src/lib.rs",
                "use crate::util::*;\npub mod util;\npub fn caller() { tidy(); }\n",
            ),
        ]);
        let g = CallGraph::build(&ws, &[]);
        assert_eq!(callees(&g, node(&g, "caller")), ["projtile_a::util::tidy"]);
    }

    #[test]
    fn std_shadowed_method_names_do_not_dispatch_untyped() {
        let ws = ws_of(&[
            (
                "crates/a/src/lib.rs",
                "pub struct Q;\nimpl Q { pub fn len(&self) -> usize { 0 } }\n",
            ),
            (
                "crates/b/src/lib.rs",
                "pub fn untyped(v: &std::vec::Vec<u8>) -> usize { v.len() }\n\
                 pub fn typed(q: &projtile_a::Q) -> usize { projtile_a::Q::len(q) }\n",
            ),
        ]);
        let g = CallGraph::build(&ws, &[]);
        // `.len()` on an unknown receiver is almost always the std method,
        // even though `Q::len` shadows the name: no edge.
        assert!(callees(&g, node(&g, "untyped")).is_empty());
        // An explicit typed path still resolves.
        assert_eq!(callees(&g, node(&g, "typed")), ["projtile_a::Q::len"]);
    }

    #[test]
    fn self_receiver_narrows_shadowed_methods_to_the_inherent_impl() {
        let ws = ws_of(&[(
            "crates/a/src/lib.rs",
            "pub struct Q;\nimpl Q {\n    pub fn len(&self) -> usize { 1 }\n    \
             pub fn total(&self) -> usize { self.len() + 1 }\n}\n\
             pub struct R;\nimpl R { pub fn len(&self) -> usize { 2 } }\n",
        )]);
        let g = CallGraph::build(&ws, &[]);
        // `self.len()` inside `impl Q` dispatches to `Q::len` only — not to
        // `R::len`, and not to std.
        assert_eq!(callees(&g, node(&g, "total")), ["projtile_a::Q::len"]);
    }
}
