//! The rule catalog and its configuration.
//!
//! Each rule is a pure function from the loaded [`Workspace`] (plus the
//! [`Config`] and the shared [`RuleCtx`] — the whole-workspace call graph
//! and the allow-consumption ledger) to findings. Rule ids are stable and
//! never reused; the full catalog with rationale and examples lives in
//! `docs/lints.md`.

use std::cell::RefCell;
use std::collections::HashSet;

use crate::findings::Finding;
use crate::graph::CallGraph;
use crate::workspace::Workspace;

mod allowdebt;
mod envreg;
mod hygiene;
mod lockreach;
mod locks;
mod oracle;
mod panics;
mod reach;
mod smoke;

/// Every rule id the catalog ships (L005 is retired and never reused).
pub const KNOWN_RULES: [&str; 9] = [
    "L001", "L002", "L003", "L004", "L006", "L007", "L008", "L009", "L010",
];

/// What the rules check and where. The defaults ([`Config::repo`]) encode
/// this workspace's conventions; tests substitute fixture paths.
#[derive(Debug, Clone)]
pub struct Config {
    /// L002/L008: directories whose non-test code must not panic — L002
    /// forbids panic tokens written *inside* them, L008 forbids call chains
    /// *out of* them that reach a panic anywhere in the workspace (and,
    /// within these directories only, bare indexing and non-literal `/`/`%`).
    pub panic_scope: Vec<String>,
    /// L003/L009: directories in which lock discipline is enforced.
    pub lock_scope: Vec<String>,
    /// L003: functions too expensive to call while a `.write()` guard is
    /// live (matched by final path segment).
    pub expensive_fns: Vec<String>,
    /// L001: directory prefixes under which `src/` definitions are scanned
    /// for `_cold` oracle pairs and `tests/` files count as joint coverage.
    pub oracle_scope: Vec<String>,
    /// L004: directory prefixes whose crate roots must also carry a
    /// `missing_docs` warning attribute (the `forbid(unsafe_code)`
    /// requirement applies to every crate root unconditionally).
    pub docs_scope: Vec<String>,
    /// L006: workspace-relative path of the env-var registry document.
    pub env_registry_path: String,
    /// L006: directory prefixes excluded from the env scan (the lint crate
    /// itself names `PROJTILE_*` patterns in its sources).
    pub env_scan_exclude: Vec<String>,
    /// L007: directories whose string literals define bench workload names.
    pub bench_src_dirs: Vec<String>,
    /// L008/L009: directories excluded from the call graph (the linter is a
    /// dev-tool — never linked into the service or the kernels).
    pub graph_exclude: Vec<String>,
    /// L009: method names whose receiver call counts as blocking I/O
    /// (socket/file writes, fsyncs); `fs::`/`File::`/`OpenOptions::`/
    /// `TcpStream::`/`TcpListener::` path calls count unconditionally.
    pub blocking_io_methods: Vec<String>,
}

impl Config {
    /// The projtile workspace's conventions (see `docs/lints.md`).
    pub fn repo() -> Config {
        let s = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        Config {
            panic_scope: s(&["crates/service/src", "crates/core/src/engine"]),
            lock_scope: s(&["crates/service/src", "crates/core/src/engine"]),
            expensive_fns: s(&[
                "compute_detached",
                "exponent_surface",
                "exponent_surface_cold",
                "exponent_vs_beta",
                "exponent_vs_beta_cold",
                "exponent_vs_beta_with",
                "enumerated_exponent",
                "enumerated_exponent_cold",
                "check_tightness",
                "check_tightness_surface",
                "arbitrary_bound_exponent",
                "solve_hbl",
                "parametric_rhs",
                "parametric_rhs_with",
                "parametric_rhs_box",
                "parametric_rhs_box_cold",
            ]),
            oracle_scope: s(&["crates"]),
            docs_scope: s(&["crates", "src"]),
            env_registry_path: "docs/operations.md".to_string(),
            env_scan_exclude: s(&["crates/lint"]),
            bench_src_dirs: s(&["crates/bench/src"]),
            graph_exclude: s(&["crates/lint"]),
            blocking_io_methods: s(&[
                "write_all",
                "write_fmt",
                "flush",
                "sync_all",
                "sync_data",
                "read_exact",
                "read_to_end",
                "read_to_string",
                "send",
                "send_to",
                "recv",
                "recv_from",
                "accept",
                "connect",
            ]),
        }
    }
}

/// State shared by the rules of one run: the interprocedural call graph and
/// the ledger of `// lint: allow` directives that actually suppressed (or
/// would suppress) a live finding — L010 flags the rest as stale.
pub struct RuleCtx {
    /// The whole-workspace call graph.
    pub graph: CallGraph,
    /// `(path, directive line)` of every consumed allow directive.
    used_allows: RefCell<HashSet<(String, u32)>>,
}

impl RuleCtx {
    /// Builds the shared context (graph construction happens here, once).
    pub fn new(ws: &Workspace, cfg: &Config) -> RuleCtx {
        RuleCtx {
            graph: CallGraph::build(ws, &cfg.graph_exclude),
            used_allows: RefCell::new(HashSet::new()),
        }
    }

    /// Records that the directive at `(path, line)` suppressed something.
    pub fn mark_allow_used(&self, path: &str, line: u32) {
        self.used_allows
            .borrow_mut()
            .insert((path.to_string(), line));
    }

    /// Whether the directive at `(path, line)` was consumed by any rule.
    pub fn allow_used(&self, path: &str, line: u32) -> bool {
        self.used_allows
            .borrow()
            .contains(&(path.to_string(), line))
    }
}

/// Runs every rule over the workspace, returning findings sorted by
/// `(path, line, rule)`.
pub fn run_all(ws: &Workspace, cfg: &Config) -> Vec<Finding> {
    let ctx = RuleCtx::new(ws, cfg);
    let mut findings = Vec::new();
    findings.extend(oracle::run(ws, cfg, &ctx));
    findings.extend(panics::run(ws, cfg, &ctx));
    findings.extend(locks::run(ws, cfg, &ctx));
    findings.extend(hygiene::run(ws, cfg));
    findings.extend(envreg::run(ws, cfg, &ctx));
    findings.extend(smoke::run(ws, cfg));
    findings.extend(reach::run(ws, cfg, &ctx));
    findings.extend(lockreach::run(ws, cfg, &ctx));
    // L010 must run last: it audits the allow-consumption ledger.
    findings.extend(allowdebt::run(ws, cfg, &ctx));
    findings.sort_by(|a, b| {
        (&a.path, a.line, &a.rule, &a.detail).cmp(&(&b.path, b.line, &b.rule, &b.detail))
    });
    findings
}
