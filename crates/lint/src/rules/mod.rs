//! The rule catalog and its configuration.
//!
//! Each rule is a pure function from the loaded [`Workspace`] (plus the
//! [`Config`]) to findings. Rule ids are stable and never reused; the full
//! catalog with rationale and examples lives in `docs/lints.md`.

use crate::findings::Finding;
use crate::workspace::Workspace;

mod envreg;
mod hygiene;
mod locks;
mod oracle;
mod panics;
mod smoke;

/// What the rules check and where. The defaults ([`Config::repo`]) encode
/// this workspace's conventions; tests substitute fixture paths.
#[derive(Debug, Clone)]
pub struct Config {
    /// L002: directories whose non-test code must not panic.
    pub panic_scope: Vec<String>,
    /// L003: directories in which lock discipline is enforced.
    pub lock_scope: Vec<String>,
    /// L003: functions too expensive to call while a `.write()` guard is
    /// live (matched by final path segment).
    pub expensive_fns: Vec<String>,
    /// L001: directory prefixes under which `src/` definitions are scanned
    /// for `_cold` oracle pairs and `tests/` files count as joint coverage.
    pub oracle_scope: Vec<String>,
    /// L004: directory prefixes whose crate roots must also carry a
    /// `missing_docs` warning attribute (the `forbid(unsafe_code)`
    /// requirement applies to every crate root unconditionally).
    pub docs_scope: Vec<String>,
    /// L006: workspace-relative path of the env-var registry document.
    pub env_registry_path: String,
    /// L006: directory prefixes excluded from the env scan (the lint crate
    /// itself names `PROJTILE_*` patterns in its sources).
    pub env_scan_exclude: Vec<String>,
    /// L007: directories whose string literals define bench workload names.
    pub bench_src_dirs: Vec<String>,
}

impl Config {
    /// The projtile workspace's conventions (see `docs/lints.md`).
    pub fn repo() -> Config {
        let s = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        Config {
            panic_scope: s(&["crates/service/src", "crates/core/src/engine"]),
            lock_scope: s(&["crates/service/src", "crates/core/src/engine"]),
            expensive_fns: s(&[
                "compute_detached",
                "exponent_surface",
                "exponent_surface_cold",
                "exponent_vs_beta",
                "exponent_vs_beta_cold",
                "exponent_vs_beta_with",
                "enumerated_exponent",
                "enumerated_exponent_cold",
                "check_tightness",
                "check_tightness_surface",
                "arbitrary_bound_exponent",
                "solve_hbl",
                "parametric_rhs",
                "parametric_rhs_with",
                "parametric_rhs_box",
                "parametric_rhs_box_cold",
            ]),
            oracle_scope: s(&["crates"]),
            docs_scope: s(&["crates", "src"]),
            env_registry_path: "docs/operations.md".to_string(),
            env_scan_exclude: s(&["crates/lint"]),
            bench_src_dirs: s(&["crates/bench/src"]),
        }
    }
}

/// Runs every rule over the workspace, returning findings sorted by
/// `(path, line, rule)`.
pub fn run_all(ws: &Workspace, cfg: &Config) -> Vec<Finding> {
    let mut findings = Vec::new();
    findings.extend(oracle::run(ws, cfg));
    findings.extend(panics::run(ws, cfg));
    findings.extend(locks::run(ws, cfg));
    findings.extend(hygiene::run(ws, cfg));
    findings.extend(envreg::run(ws, cfg));
    findings.extend(smoke::run(ws, cfg));
    findings.sort_by(|a, b| {
        (&a.path, a.line, &a.rule, &a.detail).cmp(&(&b.path, b.line, &b.rule, &b.detail))
    });
    findings
}
