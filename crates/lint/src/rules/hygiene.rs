//! **L004 crate hygiene** — every crate root carries
//! `#![forbid(unsafe_code)]`, and the documented crates also warn on missing
//! docs.
//!
//! The workspace's exactness claims lean on the type system (no `unsafe`
//! anywhere, including the shims that stand in for third-party crates), and
//! CI treats rustdoc warnings as errors — both enforced per crate root, so
//! a new crate added without the attributes silently weakens the story.

use crate::findings::Finding;
use crate::workspace::{Source, Workspace};

use super::Config;

/// Whether `path` is a crate root (`src/lib.rs` of the facade or of any
/// crate under `crates/` / `shims/`).
fn is_crate_root(path: &str) -> bool {
    path == "src/lib.rs" || path.ends_with("/src/lib.rs")
}

fn has_attr(src: &Source, level_prefixes: &[&str], word: &str) -> bool {
    src.parsed.parsed_attr_matches(level_prefixes, word)
}

/// Runs L004.
pub fn run(ws: &Workspace, cfg: &Config) -> Vec<Finding> {
    let mut findings = Vec::new();
    for src in ws.sources.iter().filter(|s| is_crate_root(&s.path)) {
        if !has_attr(src, &["forbid", "deny"], "unsafe_code") {
            findings.push(Finding::new(
                "L004",
                &src.path,
                1,
                "forbid(unsafe_code)",
                "crate root lacks `#![forbid(unsafe_code)]`",
            ));
        }
        let needs_docs = cfg.docs_scope.iter().any(|d| src.under(d));
        if needs_docs && !has_attr(src, &["warn", "deny", "forbid"], "missing_docs") {
            findings.push(Finding::new(
                "L004",
                &src.path,
                1,
                "missing_docs",
                "crate root lacks a `#![warn(missing_docs)]` (or stricter) attribute",
            ));
        }
    }
    findings
}
