//! **L002 no-panic surface** — the service request path and the engine must
//! not unwind except through `catch_unwind`.
//!
//! `crates/service` answers panics with an isolated `500` via per-request
//! `catch_unwind`, and the engine reports malformed inputs as typed
//! [`EngineError`]s so the front end can answer `400` without unwinding.
//! Both properties die the first time someone writes a convenient
//! `.unwrap()` on a request path. Inside the configured directories this
//! rule forbids, outside test code:
//!
//! * `.unwrap()` / `.expect(…)`;
//! * `panic!`, `unreachable!`, `todo!`, `unimplemented!`;
//! * `assert!` / `assert_eq!` / `assert_ne!` (the release-mode asserts that
//!   guard indexing; `debug_assert*` is allowed — it vanishes in release
//!   builds and the differential tests run debug).
//!
//! Escape hatch: `// lint: allow(L002) <reason>` on the same line or the
//! line above. A directive without a reason does not count.

use crate::findings::Finding;
use crate::lexer::Tok;
use crate::parser::ParsedFile;
use crate::workspace::Workspace;

use super::{Config, RuleCtx};

const METHODS: [&str; 2] = ["unwrap", "expect"];
const MACROS: [&str; 7] = [
    "panic",
    "unreachable",
    "todo",
    "unimplemented",
    "assert",
    "assert_eq",
    "assert_ne",
];

/// If token `i` is a panicking token (`.unwrap()` / `.expect(` shape, or a
/// panicking macro invocation), returns its display form (`".unwrap()"`,
/// `"panic!"`). Shared with L008's transitive sink scan.
pub(super) fn panic_token(p: &ParsedFile, i: usize) -> Option<String> {
    let Tok::Ident(name) = &p.tokens[i].tok else {
        return None;
    };
    if METHODS.contains(&name.as_str()) {
        let dotted = matches!(
            p.tokens.get(i.wrapping_sub(1)).map(|t| &t.tok),
            Some(Tok::Punct('.'))
        ) && matches!(p.tokens.get(i + 1).map(|t| &t.tok), Some(Tok::Punct('(')));
        return dotted.then(|| format!(".{name}()"));
    }
    if MACROS.contains(&name.as_str())
        && matches!(p.tokens.get(i + 1).map(|t| &t.tok), Some(Tok::Punct('!')))
    {
        return Some(format!("{name}!"));
    }
    None
}

/// Runs L002.
pub fn run(ws: &Workspace, cfg: &Config, ctx: &RuleCtx) -> Vec<Finding> {
    let mut findings = Vec::new();
    for src in ws.sources_under(&cfg.panic_scope) {
        if src.is_test_file() {
            continue;
        }
        let p = &src.parsed;
        for (i, t) in p.tokens.iter().enumerate() {
            let Some(display) = panic_token(p, i) else {
                continue;
            };
            if p.in_test_code(i) {
                continue;
            }
            if let Some(dl) = p.allow_line("L002", t.line) {
                ctx.mark_allow_used(&src.path, dl);
                continue;
            }
            let scope = p
                .enclosing_fn(i)
                .map(|f| f.name.clone())
                .unwrap_or_else(|| "<file>".to_string());
            findings.push(Finding::new(
                "L002",
                &src.path,
                t.line,
                format!("{scope}::{display}"),
                format!(
                    "`{display}` in `{scope}` can unwind on the no-panic surface; \
                     return a typed error (EngineError / status code) or add \
                     `// lint: allow(L002) <reason>`"
                ),
            ));
        }
    }
    findings
}
