//! **L002 no-panic surface** — the service request path and the engine must
//! not unwind except through `catch_unwind`.
//!
//! `crates/service` answers panics with an isolated `500` via per-request
//! `catch_unwind`, and the engine reports malformed inputs as typed
//! [`EngineError`]s so the front end can answer `400` without unwinding.
//! Both properties die the first time someone writes a convenient
//! `.unwrap()` on a request path. Inside the configured directories this
//! rule forbids, outside test code:
//!
//! * `.unwrap()` / `.expect(…)`;
//! * `panic!`, `unreachable!`, `todo!`, `unimplemented!`;
//! * `assert!` / `assert_eq!` / `assert_ne!` (the release-mode asserts that
//!   guard indexing; `debug_assert*` is allowed — it vanishes in release
//!   builds and the differential tests run debug).
//!
//! Escape hatch: `// lint: allow(L002) <reason>` on the same line or the
//! line above. A directive without a reason does not count.

use crate::findings::Finding;
use crate::lexer::Tok;
use crate::workspace::Workspace;

use super::Config;

const METHODS: [&str; 2] = ["unwrap", "expect"];
const MACROS: [&str; 7] = [
    "panic",
    "unreachable",
    "todo",
    "unimplemented",
    "assert",
    "assert_eq",
    "assert_ne",
];

/// Runs L002.
pub fn run(ws: &Workspace, cfg: &Config) -> Vec<Finding> {
    let mut findings = Vec::new();
    for src in ws.sources_under(&cfg.panic_scope) {
        if src.is_test_file() {
            continue;
        }
        let p = &src.parsed;
        for (i, t) in p.tokens.iter().enumerate() {
            let Tok::Ident(name) = &t.tok else { continue };
            let forbidden = if METHODS.contains(&name.as_str()) {
                matches!(
                    p.tokens.get(i.wrapping_sub(1)).map(|t| &t.tok),
                    Some(Tok::Punct('.'))
                ) && matches!(p.tokens.get(i + 1).map(|t| &t.tok), Some(Tok::Punct('(')))
            } else if MACROS.contains(&name.as_str()) {
                matches!(p.tokens.get(i + 1).map(|t| &t.tok), Some(Tok::Punct('!')))
            } else {
                false
            };
            if !forbidden || p.in_test_code(i) || p.allowed("L002", t.line) {
                continue;
            }
            let display = if METHODS.contains(&name.as_str()) {
                format!(".{name}()")
            } else {
                format!("{name}!")
            };
            let scope = p
                .enclosing_fn(i)
                .map(|f| f.name.clone())
                .unwrap_or_else(|| "<file>".to_string());
            findings.push(Finding::new(
                "L002",
                &src.path,
                t.line,
                format!("{scope}::{display}"),
                format!(
                    "`{display}` in `{scope}` can unwind on the no-panic surface; \
                     return a typed error (EngineError / status code) or add \
                     `// lint: allow(L002) <reason>`"
                ),
            ));
        }
    }
    findings
}
