//! **L010 allow-debt** — every `// lint: allow` directive must still
//! suppress a live finding.
//!
//! Inline allows are the catalog's pressure valve: a named invariant beats a
//! baseline entry because it sits next to the code it excuses. But the code
//! moves and the excuse stays — a refactor deletes the `.unwrap()` and the
//! directive above it now suppresses nothing, silently pre-approving the
//! *next* panic someone writes on that line. This rule closes the loop:
//! every other rule records which directives it consumed (including the
//! reachability rules, which count a directive as live when it cuts a sink,
//! edge, or entry that the uncut call graph could still reach), and whatever
//! remains is a finding. Also flagged: directives without a reason (they
//! never suppressed anything to begin with) and directives naming a rule id
//! that is not in the catalog (typos rot silently otherwise).
//!
//! Directives inside `#[cfg(test)]` regions or test files are exempt — test
//! code routinely quotes directives as data.

use crate::findings::Finding;
use crate::workspace::Workspace;

use super::{Config, RuleCtx, KNOWN_RULES};

/// Runs L010.
pub fn run(ws: &Workspace, _cfg: &Config, ctx: &RuleCtx) -> Vec<Finding> {
    let mut findings = Vec::new();
    for src in &ws.sources {
        if src.is_test_file() {
            continue;
        }
        for d in &src.parsed.allows {
            if src.parsed.line_in_test_code(d.line) {
                continue;
            }
            let detail = format!("allow({}):{}", d.rule, d.line);
            if !d.has_reason {
                findings.push(Finding::new(
                    "L010",
                    &src.path,
                    d.line,
                    detail,
                    format!(
                        "`lint: allow({})` has no reason, so it suppresses nothing; \
                         state the invariant it relies on or delete it",
                        d.rule
                    ),
                ));
                continue;
            }
            if !KNOWN_RULES.contains(&d.rule.as_str()) {
                findings.push(Finding::new(
                    "L010",
                    &src.path,
                    d.line,
                    detail,
                    format!(
                        "`lint: allow({})` names a rule that is not in the catalog \
                         (typo? retired id?); see docs/lints.md",
                        d.rule
                    ),
                ));
                continue;
            }
            if !ctx.allow_used(&src.path, d.line) {
                findings.push(Finding::new(
                    "L010",
                    &src.path,
                    d.line,
                    detail,
                    format!(
                        "stale `lint: allow({})`: no live {} finding is suppressed \
                         here any more; delete the directive",
                        d.rule, d.rule
                    ),
                ));
            }
        }
    }
    findings
}
