//! **L003 lock discipline** — never compute under a shard write lock.
//!
//! [`SharedEngine`]'s scaling contract is that misses compute *outside* the
//! shard locks (solves can take milliseconds; a write guard held across one
//! serializes every reader on that shard). The convention survives only as
//! long as nobody calls an expensive function while a `.write()` guard is
//! live. This rule tracks, per function body in the configured directories:
//!
//! * `let g = …​.write();` — guard `g` is live to the end of its block;
//! * a bare `….write()` temporary — live to the end of its statement;
//! * a call to a helper whose return type names a write guard
//!   (`fn wshard(&self, i) -> RwLockWriteGuard<…>`) — an acquisition at the
//!   call site, exactly like a literal `.write()`;
//! * `drop(g)` — ends `g`'s liveness early.
//!
//! Any call to a configured expensive function (the LP/enumeration entry
//! points and `compute_detached`) while a guard is live is a finding.
//! Escape hatch: `// lint: allow(L003) <reason>`.

use std::collections::HashSet;

use crate::findings::Finding;
use crate::graph::GuardKind;
use crate::lexer::Tok;
use crate::workspace::Workspace;

use super::{Config, RuleCtx};

#[derive(Debug)]
struct Guard {
    /// Binding name (`None` for a statement-temporary guard).
    name: Option<String>,
    /// Brace depth at which the guard was created.
    depth: usize,
    /// Temporary guards die at the next `;` at their depth.
    statement_only: bool,
}

/// Runs L003.
pub fn run(ws: &Workspace, cfg: &Config, ctx: &RuleCtx) -> Vec<Finding> {
    // Workspace fns whose return type names a *write* guard: calling one is
    // a lock acquisition at the call site (the helper-wrapped `.write()`).
    let guard_helpers: HashSet<&str> = ctx
        .graph
        .nodes
        .iter()
        .filter(|n| n.guard_ret == Some(GuardKind::Write))
        .map(|n| n.name.as_str())
        .collect();
    let mut findings = Vec::new();
    for src in ws.sources_under(&cfg.lock_scope) {
        if src.is_test_file() {
            continue;
        }
        let p = &src.parsed;
        let tokens = &p.tokens;
        let mut depth = 0usize;
        let mut brackets = 0usize;
        let mut guards: Vec<Guard> = Vec::new();
        // The binding name of the statement's `let`, if any.
        let mut pending_let: Option<String> = None;

        for (i, t) in tokens.iter().enumerate() {
            match &t.tok {
                Tok::Punct('{') => depth += 1,
                Tok::Punct('}') => {
                    depth = depth.saturating_sub(1);
                    guards.retain(|g| g.depth <= depth);
                }
                Tok::Punct('[') => brackets += 1,
                Tok::Punct(']') => brackets = brackets.saturating_sub(1),
                Tok::Punct(';') if brackets == 0 => {
                    pending_let = None;
                    guards.retain(|g| !(g.statement_only && g.depth == depth));
                }
                Tok::Ident(name) if name == "let" => {
                    let mut j = i + 1;
                    if matches!(tokens.get(j).map(|t| &t.tok), Some(Tok::Ident(m)) if m == "mut") {
                        j += 1;
                    }
                    if let Some(Tok::Ident(n)) = tokens.get(j).map(|t| &t.tok) {
                        pending_let = Some(n.clone());
                    }
                }
                Tok::Ident(name) if name == "drop" => {
                    // drop(g) ends g's liveness.
                    if let (Some(Tok::Punct('(')), Some(Tok::Ident(arg))) = (
                        tokens.get(i + 1).map(|t| &t.tok),
                        tokens.get(i + 2).map(|t| &t.tok),
                    ) {
                        guards.retain(|g| g.name.as_deref() != Some(arg.as_str()));
                    }
                }
                Tok::Ident(name) if name == "write" || guard_helpers.contains(name.as_str()) => {
                    // `.write()` with no arguments, or a call to a helper
                    // that returns a write guard: a lock acquisition.
                    let called = matches!(tokens.get(i + 1).map(|t| &t.tok), Some(Tok::Punct('(')));
                    let is_acquire = if name == "write" {
                        called
                            && matches!(
                                tokens.get(i.wrapping_sub(1)).map(|t| &t.tok),
                                Some(Tok::Punct('.'))
                            )
                            && matches!(tokens.get(i + 2).map(|t| &t.tok), Some(Tok::Punct(')')))
                    } else {
                        // Helper call (dotted or free) — but not the
                        // helper's own `fn` definition.
                        called
                            && !matches!(
                                tokens.get(i.wrapping_sub(1)).map(|t| &t.tok),
                                Some(Tok::Ident(kw)) if kw == "fn"
                            )
                    };
                    if is_acquire && !p.in_test_code(i) {
                        guards.push(Guard {
                            name: pending_let.clone(),
                            depth,
                            statement_only: pending_let.is_none(),
                        });
                    }
                }
                Tok::Ident(name)
                    if cfg.expensive_fns.iter().any(|f| f == name)
                        && !guards.is_empty()
                        && matches!(tokens.get(i + 1).map(|t| &t.tok), Some(Tok::Punct('('))) =>
                {
                    if p.in_test_code(i) {
                        continue;
                    }
                    if let Some(dl) = p.allow_line("L003", t.line) {
                        ctx.mark_allow_used(&src.path, dl);
                        continue;
                    }
                    let scope = p
                        .enclosing_fn(i)
                        .map(|f| f.name.clone())
                        .unwrap_or_else(|| "<file>".to_string());
                    findings.push(Finding::new(
                        "L003",
                        &src.path,
                        t.line,
                        format!("{scope}::{name}"),
                        format!(
                            "`{name}` is called in `{scope}` while a `.write()` lock guard \
                             is live; compute before taking the write lock (see \
                             SharedEngine's compute-outside-locks contract)"
                        ),
                    ));
                }
                _ => {}
            }
        }
    }
    findings
}
