//! **L001 oracle-coverage** — every warm/fast public function that keeps a
//! `_cold` differential oracle must be exercised *together with* that oracle
//! in at least one test file under `crates/*/tests/`.
//!
//! The workspace's soundness story rests on retained cold twins
//! (`enumerated_exponent_cold`, `exponent_surface_cold`, …) being compared
//! bitwise against the optimized paths. A refactor that deletes or bypasses
//! such a differential test silently converts "proven identical" into
//! "hopefully identical"; this rule makes that deletion loud.

use std::collections::HashSet;

use crate::findings::Finding;
use crate::lexer::Tok;
use crate::parser::ParsedFile;
use crate::workspace::{Source, Workspace};

use super::{Config, RuleCtx};

fn ident_set(parsed: &ParsedFile) -> HashSet<&str> {
    parsed
        .tokens
        .iter()
        .filter_map(|t| match &t.tok {
            Tok::Ident(s) => Some(s.as_str()),
            _ => None,
        })
        .collect()
}

fn in_scope_src(s: &Source, cfg: &Config) -> bool {
    cfg.oracle_scope.iter().any(|d| s.under(d)) && !s.is_test_file() && s.path.contains("/src/")
}

/// Runs L001.
pub fn run(ws: &Workspace, cfg: &Config, ctx: &RuleCtx) -> Vec<Finding> {
    let mut findings = Vec::new();

    // Test files (under the oracle scope) and their identifier sets.
    let test_idents: Vec<HashSet<&str>> = ws
        .sources
        .iter()
        .filter(|s| cfg.oracle_scope.iter().any(|d| s.under(d)) && s.is_test_file())
        .map(|s| ident_set(&s.parsed))
        .collect();

    // All public fn names in scope, for twin lookup.
    let pub_fns: HashSet<&str> = ws
        .sources
        .iter()
        .filter(|s| in_scope_src(s, cfg))
        .flat_map(|s| s.parsed.fns.iter())
        .filter(|f| f.is_pub)
        .map(|f| f.name.as_str())
        .collect();

    for src in ws.sources.iter().filter(|s| in_scope_src(s, cfg)) {
        for f in src.parsed.fns.iter().filter(|f| f.is_pub) {
            let Some(warm) = f.name.strip_suffix("_cold") else {
                continue;
            };
            if warm.is_empty() || !pub_fns.contains(warm) {
                continue; // an oracle without a same-named warm twin
            }
            let covered = test_idents
                .iter()
                .any(|ids| ids.contains(warm) && ids.contains(f.name.as_str()));
            if covered {
                continue;
            }
            if let Some(dl) = src.parsed.allow_line("L001", f.line) {
                ctx.mark_allow_used(&src.path, dl);
                continue;
            }
            findings.push(Finding::new(
                "L001",
                &src.path,
                f.line,
                warm,
                format!(
                    "`{warm}` has a `_cold` differential oracle but no test under \
                     crates/*/tests/ exercises `{warm}` and `{}` together",
                    f.name
                ),
            ));
        }
    }
    findings
}
