//! **L006 env-var registry** — every `PROJTILE_*` environment variable named
//! in the sources must be documented in `docs/operations.md`.
//!
//! The operations runbook is the contract with whoever runs the service at
//! 3am; an env knob that exists only in the code is a knob nobody can find
//! during an incident. The rule scans every string literal in the workspace
//! (the only way the code can name an env var) and checks the extracted
//! `PROJTILE_[A-Z0-9_]+` names against the registry document's text.

use std::collections::HashSet;

use crate::findings::Finding;
use crate::lexer::Tok;
use crate::workspace::Workspace;

use super::{Config, RuleCtx};

/// Extracts `PROJTILE_*` variable names from a string literal's contents.
fn env_names(s: &str) -> Vec<String> {
    const PREFIX: &str = "PROJTILE_";
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(at) = s[from..].find(PREFIX) {
        let start = from + at;
        let rest = &s[start + PREFIX.len()..];
        let tail: String = rest
            .chars()
            .take_while(|c| c.is_ascii_uppercase() || c.is_ascii_digit() || *c == '_')
            .collect();
        from = start + PREFIX.len();
        if !tail.is_empty() {
            out.push(format!("{PREFIX}{tail}"));
        }
    }
    out
}

/// Runs L006.
pub fn run(ws: &Workspace, cfg: &Config, ctx: &RuleCtx) -> Vec<Finding> {
    let mut findings = Vec::new();
    let registry = ws.env_registry.as_deref();
    let mut reported: HashSet<(String, String)> = HashSet::new();
    for src in &ws.sources {
        if cfg.env_scan_exclude.iter().any(|d| src.under(d)) {
            continue;
        }
        for t in &src.parsed.tokens {
            let Tok::Str(content) = &t.tok else { continue };
            for name in env_names(content) {
                if registry.is_some_and(|doc| doc.contains(&name)) {
                    continue;
                }
                if let Some(dl) = src.parsed.allow_line("L006", t.line) {
                    ctx.mark_allow_used(&src.path, dl);
                    continue;
                }
                if !reported.insert((src.path.clone(), name.clone())) {
                    continue; // one finding per (file, variable)
                }
                let message = match registry {
                    Some(_) => format!(
                        "`{name}` is read here but not documented in {}",
                        cfg.env_registry_path
                    ),
                    None => format!(
                        "`{name}` is read here but the registry document {} does not exist",
                        cfg.env_registry_path
                    ),
                };
                findings.push(Finding::new("L006", &src.path, t.line, &name, message));
            }
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extracts_names_and_ignores_bare_prefix() {
        assert_eq!(
            env_names("set PROJTILE_THREADS=4 or PROJTILE_FAULTS; PROJTILE_ alone"),
            ["PROJTILE_THREADS", "PROJTILE_FAULTS"]
        );
    }
}
