//! **L007 smoke-grep rot** — every workload name `scripts/ci.sh` greps out of
//! the bench-smoke snapshot must still be producible by the bench sources.
//!
//! The CI bench smoke asserts that specific workloads ran by grepping their
//! names out of the emitted snapshot. When a workload is renamed, the stale
//! grep fails CI loudly — but the reverse rot (the grep is deleted along
//! with a typo'd rename, silently dropping coverage) and review-time
//! confidence both benefit from a static check: each grepped name must match
//! some string literal in `crates/bench/src`. Workload names assembled with
//! `format!` are matched structurally: the literal's fragments around `{…}`
//! holes must align with the grepped name (so
//! `"service/mixed_4threads/{tag}"` covers `service/mixed_4threads/p99`).

use crate::findings::Finding;
use crate::lexer::Tok;
use crate::workspace::Workspace;

use super::Config;

/// Whether the literal `lit` (possibly a `format!` template with `{…}`
/// holes) can produce a string containing `name`.
fn literal_may_contain(lit: &str, name: &str) -> bool {
    // Protect `{{`/`}}` escapes before splitting on holes.
    let protected = lit.replace("{{", "\u{1}").replace("}}", "\u{2}");
    let unprotect = |s: &str| s.replace('\u{1}', "{").replace('\u{2}', "}");
    if !protected.contains('{') {
        return unprotect(&protected).contains(name);
    }
    // Split into the fixed fragments between holes.
    let mut fragments: Vec<String> = Vec::new();
    let mut rest = protected.as_str();
    loop {
        match rest.find('{') {
            Some(open) => {
                fragments.push(unprotect(&rest[..open]));
                match rest[open..].find('}') {
                    Some(close) => rest = &rest[open + close + 1..],
                    None => break, // unterminated hole: ignore the tail
                }
            }
            None => {
                fragments.push(unprotect(rest));
                break;
            }
        }
    }
    let fragments: Vec<&str> = fragments
        .iter()
        .map(|f| f.as_str())
        .filter(|f| !f.is_empty())
        .collect();
    if fragments.is_empty() {
        return false; // a pure-hole template pins nothing
    }
    // Either the name sits inside one fixed fragment, or every fragment
    // appears in the name, in order (holes absorb the rest).
    if fragments.iter().any(|f| f.contains(name)) {
        return true;
    }
    let mut pos = 0usize;
    for f in &fragments {
        match name[pos..].find(f) {
            Some(at) => pos += at + f.len(),
            None => return false,
        }
    }
    true
}

/// Extracts the smoke-grep patterns from `ci.sh`: lines of the form
/// `grep -q "NAME" "$smoke_out"`.
fn smoke_greps(script: &str) -> Vec<(String, u32)> {
    let mut out = Vec::new();
    for (n, line) in script.lines().enumerate() {
        let t = line.trim();
        if !t.contains("$smoke_out") {
            continue;
        }
        let Some(after) = t.strip_prefix("grep -q \"") else {
            continue;
        };
        if let Some(end) = after.find('"') {
            out.push((after[..end].to_string(), n as u32 + 1));
        }
    }
    out
}

/// Runs L007.
pub fn run(ws: &Workspace, cfg: &Config) -> Vec<Finding> {
    let Some(script) = ws.ci_script.as_deref() else {
        return Vec::new();
    };
    let literals: Vec<&str> = ws
        .sources_under(&cfg.bench_src_dirs)
        .flat_map(|s| s.parsed.tokens.iter())
        .filter_map(|t| match &t.tok {
            Tok::Str(s) => Some(s.as_str()),
            _ => None,
        })
        .collect();
    let mut findings = Vec::new();
    for (name, line) in smoke_greps(script) {
        if literals.iter().any(|l| literal_may_contain(l, &name)) {
            continue;
        }
        findings.push(Finding::new(
            "L007",
            "scripts/ci.sh",
            line,
            &name,
            format!(
                "ci.sh smoke-greps `{name}` but no string literal in \
                 crates/bench/src can produce that workload name (stale after a rename?)"
            ),
        ));
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_literals_match_by_substring() {
        assert!(literal_may_contain(
            "service/roundtrip/tightness_hit",
            "service/roundtrip"
        ));
        assert!(!literal_may_contain("engine/cold", "engine/warm"));
    }

    #[test]
    fn format_holes_absorb_variable_parts() {
        assert!(literal_may_contain(
            "service/mixed_4threads/{tag}",
            "service/mixed_4threads/p99"
        ));
        assert!(!literal_may_contain(
            "service/mixed_4threads/{tag}",
            "engine/cache_hit"
        ));
        assert!(!literal_may_contain("{tag}", "anything"));
    }

    #[test]
    fn brace_escapes_are_literal_braces() {
        assert!(literal_may_contain("a{{b}}c", "a{b}c"));
    }

    #[test]
    fn greps_are_extracted_with_lines() {
        let script = "echo hi\n  grep -q \"engine/cold\" \"$smoke_out\"\ngrep -q \"x\" other\n";
        assert_eq!(smoke_greps(script), [("engine/cold".to_string(), 2)]);
    }
}
