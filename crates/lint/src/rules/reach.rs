//! **L008 transitive no-panic** — nothing reachable from the no-panic
//! surface may panic, anywhere in the workspace.
//!
//! L002 catches a panic token *written inside* the surface directories; this
//! rule walks the interprocedural call graph so that a helper in
//! `projtile_arith` or `projtile_lp` that panics three calls away from
//! `SharedEngine::analyze` is a finding too. Sinks are:
//!
//! * panicking tokens (`.unwrap()`, `panic!`, `assert!`, …) in any
//!   in-workspace callee **outside** the surface directories (inside them,
//!   L002 already owns the token);
//! * bare slice/array indexing (`xs[i]`) and non-literal `/` / `%` — but
//!   only in functions *defined inside* the surface directories. The exact
//!   kernels (`lp`, `arith`, `loopnest`) index and divide by nature and pin
//!   their invariants with differential oracles; the surface must not.
//!
//! Every finding prints the full call chain from the surface entry to the
//! sink, so the fix (pushing a typed `Result` through the chain, or an
//! `allow` naming the invariant on any chain link) is mechanical. An
//! `// lint: allow(L008) <reason>` cuts the graph where it stands: on the
//! sink line it removes the sink, on a call line it removes the edge, and on
//! any `fn`'s own line it removes that node — every chain through that
//! function is cut, so one directive can excuse a function whose body is a
//! cluster of invariant-pinning asserts.

use std::collections::HashSet;

use crate::findings::Finding;
use crate::graph::CallSite;
use crate::lexer::Tok;
use crate::workspace::{Source, Workspace};

use super::{panics, Config, RuleCtx};

/// Rust keywords that may directly precede `[` (array literal) or a binary
/// operator position without being a value expression.
fn is_keyword(s: &str) -> bool {
    matches!(
        s,
        "as" | "break"
            | "const"
            | "continue"
            | "crate"
            | "dyn"
            | "else"
            | "enum"
            | "extern"
            | "false"
            | "fn"
            | "for"
            | "if"
            | "impl"
            | "in"
            | "let"
            | "loop"
            | "match"
            | "mod"
            | "move"
            | "mut"
            | "pub"
            | "ref"
            | "return"
            | "static"
            | "struct"
            | "super"
            | "trait"
            | "true"
            | "type"
            | "unsafe"
            | "use"
            | "where"
            | "while"
            | "yield"
    )
}

/// One panic-capable token in a function body.
pub(super) struct Sink {
    pub line: u32,
    pub display: String,
}

/// Collects the sink tokens of node `id`'s body. `strict` adds the
/// indexing/division sinks (surface-defined fns only); `in_surface`
/// suppresses plain panic tokens (owned by L002 there). Token-level
/// `allow(L008)` cuts a sink unless `ignore_allows`.
fn sinks_of(
    src: &Source,
    body: (usize, usize),
    strict: bool,
    in_surface: bool,
    ignore_allows: bool,
) -> Vec<Sink> {
    let p = &src.parsed;
    let tokens = &p.tokens;
    let mut out = Vec::new();
    for i in body.0 + 1..body.1 {
        let line = tokens[i].line;
        let allowed = !ignore_allows && p.allow_line("L008", line).is_some();
        if !in_surface {
            if let Some(display) = panics::panic_token(p, i) {
                if !allowed {
                    out.push(Sink { line, display });
                }
                continue;
            }
        }
        if !strict {
            continue;
        }
        match tokens[i].tok {
            Tok::Punct('[') => {
                // Postfix indexing: `xs[i]` — prev is a value-ending token.
                // A keyword before `[` (`for kind in [...]`, `return [...]`)
                // starts an array literal instead.
                let indexing = match tokens.get(i.wrapping_sub(1)).map(|t| &t.tok) {
                    Some(Tok::Ident(s)) => !is_keyword(s),
                    Some(Tok::Punct(')')) | Some(Tok::Punct(']')) => true,
                    _ => false,
                };
                // `xs[..]` (RangeFull) cannot panic on slices.
                let full_range = matches!(tokens.get(i + 1).map(|t| &t.tok), Some(Tok::Punct('.')))
                    && matches!(tokens.get(i + 2).map(|t| &t.tok), Some(Tok::Punct('.')))
                    && matches!(tokens.get(i + 3).map(|t| &t.tok), Some(Tok::Punct(']')));
                if indexing && !full_range && !allowed {
                    out.push(Sink {
                        line,
                        display: "[index]".to_string(),
                    });
                }
            }
            Tok::Punct(op @ ('/' | '%')) => {
                let binary = match tokens.get(i.wrapping_sub(1)).map(|t| &t.tok) {
                    Some(Tok::Ident(s)) => !is_keyword(s),
                    Some(Tok::Num) | Some(Tok::Punct(')')) | Some(Tok::Punct(']')) => true,
                    _ => false,
                };
                let literal_rhs = matches!(tokens.get(i + 1).map(|t| &t.tok), Some(Tok::Num));
                if binary && !literal_rhs && !allowed {
                    out.push(Sink {
                        line,
                        display: format!("{op}(non-literal)"),
                    });
                }
            }
            _ => {}
        }
    }
    out
}

/// Runs L008.
pub fn run(ws: &Workspace, cfg: &Config, ctx: &RuleCtx) -> Vec<Finding> {
    let g = &ctx.graph;
    let in_surface = |id: usize| {
        cfg.panic_scope
            .iter()
            .any(|d| ws.sources[g.nodes[id].src].under(d))
    };

    // Surface entries; an allow(L008) on the fn's own line removes it.
    let mut starts_all: Vec<usize> = Vec::new();
    let mut starts: Vec<usize> = Vec::new();
    for id in 0..g.nodes.len() {
        if !in_surface(id) {
            continue;
        }
        starts_all.push(id);
        let src = &ws.sources[g.nodes[id].src];
        if src.parsed.allow_line("L008", g.nodes[id].line).is_none() {
            starts.push(id);
        }
    }

    // Per-node sinks, with and without allow cuts.
    let n = g.nodes.len();
    let mut sinks: Vec<Vec<Sink>> = Vec::with_capacity(n);
    let mut direct = vec![false; n];
    let mut direct_raw = vec![false; n];
    for id in 0..n {
        let src = &ws.sources[g.nodes[id].src];
        let strict = in_surface(id);
        let s = sinks_of(src, g.nodes[id].body, strict, strict, false);
        direct[id] = !s.is_empty();
        direct_raw[id] = !sinks_of(src, g.nodes[id].body, strict, strict, true).is_empty();
        sinks.push(s);
    }

    // An allow on a call line cuts the edge; an allow on the callee fn's own
    // line cuts the node (every chain through it).
    let edge_ok = |caller: usize, e: &CallSite| -> bool {
        ws.sources[g.nodes[caller].src]
            .parsed
            .allow_line("L008", e.line)
            .is_none()
            && ws.sources[g.nodes[e.callee].src]
                .parsed
                .allow_line("L008", g.nodes[e.callee].line)
                .is_none()
    };
    let every_edge = |_: usize, _: &CallSite| true;

    // Findings: filtered BFS from the live entries.
    let parents = g.bfs_parents(&starts, &edge_ok);
    let mut findings = Vec::new();
    let mut seen: HashSet<(usize, u32, String)> = HashSet::new();
    for id in 0..n {
        if parents[id].is_none() || sinks[id].is_empty() {
            continue;
        }
        let chain = g.chain_to(&parents, id);
        let chain_text = g.chain_display(&chain);
        let chain_field: Vec<String> = chain
            .iter()
            .map(|&(v, _)| {
                format!(
                    "{} @ {}:{}",
                    g.nodes[v].qual, ws.sources[g.nodes[v].src].path, g.nodes[v].line
                )
            })
            .collect();
        let path = ws.sources[g.nodes[id].src].path.clone();
        for s in &sinks[id] {
            if !seen.insert((id, s.line, s.display.clone())) {
                continue;
            }
            let fn_name = &g.nodes[id].name;
            findings.push(
                Finding::new(
                    "L008",
                    &path,
                    s.line,
                    format!("{fn_name}::{}", s.display),
                    format!(
                        "`{}` in `{fn_name}` is reachable from the no-panic surface \
                         via `{chain_text}`; push a typed Result through the chain, \
                         guard the operation, or add `// lint: allow(L008) <reason>` \
                         on a chain link",
                        s.display
                    ),
                )
                .with_chain(chain_field.clone()),
            );
        }
    }

    // Allow-consumption: a directive is live if, on the *uncut* graph, it
    // sits on a reachable sink, a reachable sink-ward edge, or a sinkful
    // entry — so L010 only flags allows that no longer suppress anything.
    let parents_raw = g.bfs_parents(&starts_all, &every_edge);
    let reach_raw = g.reach_flags(&direct_raw, &every_edge);
    for id in 0..n {
        let src = &ws.sources[g.nodes[id].src];
        if parents_raw[id].is_none() {
            continue;
        }
        // A fn-line allow is live when the uncut graph still reaches a sink
        // in or below this node (cutting the node suppresses something).
        if reach_raw[id] {
            if let Some(dl) = src.parsed.allow_line("L008", g.nodes[id].line) {
                ctx.mark_allow_used(&src.path, dl);
            }
        }
        let strict = in_surface(id);
        for s in sinks_of(src, g.nodes[id].body, strict, strict, true) {
            if let Some(dl) = src.parsed.allow_line("L008", s.line) {
                ctx.mark_allow_used(&src.path, dl);
            }
        }
        for e in &g.edges[id] {
            if reach_raw[e.callee] || direct_raw[e.callee] {
                if let Some(dl) = src.parsed.allow_line("L008", e.line) {
                    ctx.mark_allow_used(&src.path, dl);
                }
            }
        }
    }

    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::ParsedFile;
    use crate::rules::RuleCtx;
    use std::path::PathBuf;

    fn run_on(files: &[(&str, &str)]) -> Vec<Finding> {
        let ws = Workspace {
            root: PathBuf::from("/nonexistent"),
            sources: files
                .iter()
                .map(|(p, s)| Source {
                    path: p.to_string(),
                    parsed: ParsedFile::parse(s),
                })
                .collect(),
            ci_script: None,
            env_registry: None,
        };
        let cfg = Config::repo();
        let ctx = RuleCtx::new(&ws, &cfg);
        run(&ws, &cfg, &ctx)
    }

    #[test]
    fn transitive_panic_is_found_with_its_chain() {
        let findings = run_on(&[
            (
                "crates/core/src/engine/mod.rs",
                "pub fn entry(n: u64) -> u64 { projtile_kern::mid(n) }\n",
            ),
            (
                "crates/kern/src/lib.rs",
                "pub fn mid(n: u64) -> u64 { deep(n) }\n\
                 fn deep(n: u64) -> u64 { assert!(n > 0); n }\n",
            ),
        ]);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].detail, "deep::assert!");
        assert_eq!(findings[0].chain.len(), 3);
        assert!(findings[0].chain[0].contains("entry"));
        assert!(findings[0].chain[2].contains("deep"));
    }

    #[test]
    fn an_allow_on_any_chain_link_suppresses() {
        // Call-line allow cuts the edge out of the surface.
        let on_call = run_on(&[
            (
                "crates/core/src/engine/mod.rs",
                "pub fn entry(n: u64) -> u64 {\n    \
                 // lint: allow(L008) callers validated n already\n    \
                 projtile_kern::mid(n)\n}\n",
            ),
            (
                "crates/kern/src/lib.rs",
                "pub fn mid(n: u64) -> u64 { deep(n) }\n\
                 fn deep(n: u64) -> u64 { assert!(n > 0); n }\n",
            ),
        ]);
        assert!(on_call.is_empty());
        // Fn-line allow on an intermediate link cuts the node.
        let on_node = run_on(&[
            (
                "crates/core/src/engine/mod.rs",
                "pub fn entry(n: u64) -> u64 { projtile_kern::mid(n) }\n",
            ),
            (
                "crates/kern/src/lib.rs",
                "// lint: allow(L008) the asserts below pin a checked invariant\n\
                 pub fn mid(n: u64) -> u64 { deep(n) }\n\
                 fn deep(n: u64) -> u64 { assert!(n > 0); n }\n",
            ),
        ]);
        assert!(on_node.is_empty());
    }

    #[test]
    fn mutual_recursion_does_not_hang_and_still_reaches() {
        let findings = run_on(&[
            (
                "crates/core/src/engine/mod.rs",
                "pub fn entry(n: u64) -> u64 { projtile_kern::ping(n) }\n",
            ),
            (
                "crates/kern/src/lib.rs",
                "pub fn ping(n: u64) -> u64 { if n == 0 { boom() } else { pong(n - 1) } }\n\
                 pub fn pong(n: u64) -> u64 { ping(n) }\n\
                 fn boom() -> u64 { panic!(\"fixture\") }\n",
            ),
        ]);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].detail, "boom::panic!");
    }

    #[test]
    fn keyword_before_bracket_is_an_array_literal_not_indexing() {
        let findings = run_on(&[(
            "crates/core/src/engine/mod.rs",
            "pub fn f() -> u64 {\n    let mut t = 0;\n    \
             for k in [1u64, 2, 3] { t += k; }\n    t\n}\n",
        )]);
        assert!(findings.is_empty());
    }

    #[test]
    fn full_range_slicing_is_not_a_sink_but_indexing_is() {
        let findings = run_on(&[(
            "crates/core/src/engine/mod.rs",
            "pub fn whole(xs: &[u64]) -> &[u64] { &xs[..] }\n\
             pub fn head(xs: &[u64]) -> u64 { xs[0] }\n",
        )]);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].detail, "head::[index]");
    }
}
