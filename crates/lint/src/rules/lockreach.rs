//! **L009 lock reachability** — while a shard/queue guard is live, nothing
//! reachable may take another lock or perform blocking I/O.
//!
//! L003 keeps *expensive compute* out of lock scopes; this rule keeps the
//! two deadlock/latency shapes out that a reviewer cannot see locally:
//!
//! * **nested acquisition** — a callee (any depth away) that takes another
//!   `.read()` / `.write()` / `.lock()` while the caller's guard is live;
//!   the read→write upgrade shape (`.write()` while a read guard is live)
//!   is flagged explicitly, since it self-deadlocks on one shard;
//! * **blocking I/O under a guard** — socket sends/receives, `fsync`s, and
//!   snapshot-store writes stall every reader of the shard for the duration
//!   of the syscall; [`SharedEngine`]'s publish path computes the JSON text
//!   under the lock's *scope rules* and performs I/O outside.
//!
//! Guard liveness follows L003 (let-bound to block end, temporaries to the
//! statement, `drop(g)` ends early) and additionally treats a call to a
//! helper returning a guard type as an acquisition at the call site.
//! `// lint: allow(L009) <reason>` cuts the graph where it stands (sink
//! token, call edge, or acquisition line); on a `fn`'s own line it cuts the
//! node, excusing every chain through that function at once.
//!
//! [`SharedEngine`]: ../../projtile_core/engine/struct.SharedEngine.html

use std::collections::HashMap;

use crate::findings::Finding;
use crate::graph::{CallGraph, CallSite, GuardKind};
use crate::lexer::Tok;
use crate::workspace::{Source, Workspace};

use super::{Config, RuleCtx};

/// Path-call roots that are always blocking I/O (`fs::write(…)`,
/// `File::create(…)`, `TcpStream::connect(…)`).
const IO_PATH_ROOTS: [&str; 5] = ["fs", "File", "OpenOptions", "TcpStream", "TcpListener"];

/// If token `i` is a lock acquisition, returns the guard kind: a literal
/// `.read()` / `.write()` / `.lock()` with no arguments, or a call to a
/// workspace helper whose return type names a guard.
fn acquisition(
    src: &Source,
    i: usize,
    guard_helpers: &HashMap<&str, GuardKind>,
) -> Option<GuardKind> {
    let tokens = &src.parsed.tokens;
    let Tok::Ident(name) = &tokens[i].tok else {
        return None;
    };
    let called = matches!(tokens.get(i + 1).map(|t| &t.tok), Some(Tok::Punct('(')));
    if !called {
        return None;
    }
    let dotted = matches!(
        tokens.get(i.wrapping_sub(1)).map(|t| &t.tok),
        Some(Tok::Punct('.'))
    );
    let empty_args = matches!(tokens.get(i + 2).map(|t| &t.tok), Some(Tok::Punct(')')));
    if dotted && empty_args {
        match name.as_str() {
            "read" => return Some(GuardKind::Read),
            "write" | "lock" => return Some(GuardKind::Write),
            _ => {}
        }
    }
    if let Some(&kind) = guard_helpers.get(name.as_str()) {
        let is_def = matches!(
            tokens.get(i.wrapping_sub(1)).map(|t| &t.tok),
            Some(Tok::Ident(kw)) if kw == "fn"
        );
        if !is_def {
            return Some(kind);
        }
    }
    None
}

/// Whether token `i` is a blocking-I/O call: a configured method name after
/// `.`, or a path call rooted at `fs::` / `File::` / …
fn blocking_io(src: &Source, i: usize, cfg: &Config) -> bool {
    let tokens = &src.parsed.tokens;
    let Tok::Ident(name) = &tokens[i].tok else {
        return false;
    };
    if !matches!(tokens.get(i + 1).map(|t| &t.tok), Some(Tok::Punct('('))) {
        return false;
    }
    let prev = tokens.get(i.wrapping_sub(1)).map(|t| &t.tok);
    if matches!(prev, Some(Tok::Punct('.'))) && cfg.blocking_io_methods.iter().any(|m| m == name) {
        return true;
    }
    if matches!(prev, Some(Tok::Punct(':')))
        && matches!(
            tokens.get(i.wrapping_sub(2)).map(|t| &t.tok),
            Some(Tok::Punct(':'))
        )
    {
        if let Some(Tok::Ident(root)) = tokens.get(i.wrapping_sub(3)).map(|t| &t.tok) {
            return IO_PATH_ROOTS.contains(&root.as_str());
        }
    }
    false
}

/// Scans node `id`'s body for direct sinks. Returns `(acquires, does_io)`;
/// token-level `allow(L009)` cuts a sink unless `ignore_allows`.
fn direct_sinks(
    ws: &Workspace,
    g: &CallGraph,
    id: usize,
    cfg: &Config,
    guard_helpers: &HashMap<&str, GuardKind>,
    ignore_allows: bool,
) -> (bool, bool) {
    let src = &ws.sources[g.nodes[id].src];
    let (bs, be) = g.nodes[id].body;
    let mut acquires = false;
    let mut does_io = false;
    for i in bs + 1..be {
        let cut = !ignore_allows
            && src
                .parsed
                .allow_line("L009", src.parsed.tokens[i].line)
                .is_some();
        if cut {
            continue;
        }
        // Helper calls are acquisitions *at the call site* for the walk, but
        // as a direct flag the helper's own `.write()` body already counts;
        // counting the call here too double-reports nothing and misses less.
        if acquisition(src, i, guard_helpers).is_some() {
            acquires = true;
        } else if blocking_io(src, i, cfg) {
            does_io = true;
        }
        if acquires && does_io {
            break;
        }
    }
    (acquires, does_io)
}

/// A live guard during the intra-body walk.
struct LiveGuard {
    name: Option<String>,
    depth: usize,
    statement_only: bool,
    kind: GuardKind,
}

/// Runs L009.
pub fn run(ws: &Workspace, cfg: &Config, ctx: &RuleCtx) -> Vec<Finding> {
    let g = &ctx.graph;
    let n = g.nodes.len();
    let guard_helpers: HashMap<&str, GuardKind> = g
        .nodes
        .iter()
        .filter_map(|nd| nd.guard_ret.map(|k| (nd.name.as_str(), k)))
        .collect();

    // Direct and transitive sink summaries, allow-cut and raw.
    let mut acq = vec![false; n];
    let mut io = vec![false; n];
    let mut acq_raw = vec![false; n];
    let mut io_raw = vec![false; n];
    for id in 0..n {
        let (a, i) = direct_sinks(ws, g, id, cfg, &guard_helpers, false);
        acq[id] = a;
        io[id] = i;
        let (a, i) = direct_sinks(ws, g, id, cfg, &guard_helpers, true);
        acq_raw[id] = a;
        io_raw[id] = i;
    }
    // An allow on a call line cuts the edge; an allow on the callee fn's own
    // line cuts the node (every chain through it).
    let edge_ok = |caller: usize, e: &CallSite| -> bool {
        ws.sources[g.nodes[caller].src]
            .parsed
            .allow_line("L009", e.line)
            .is_none()
            && ws.sources[g.nodes[e.callee].src]
                .parsed
                .allow_line("L009", g.nodes[e.callee].line)
                .is_none()
    };
    let every_edge = |_: usize, _: &CallSite| true;
    let reach_acq = g.reach_flags(&acq, &edge_ok);
    let reach_io = g.reach_flags(&io, &edge_ok);
    let reach_acq_raw = g.reach_flags(&acq_raw, &every_edge);
    let reach_io_raw = g.reach_flags(&io_raw, &every_edge);

    let mut findings = Vec::new();
    // Callees invoked while a guard was live (for allow-consumption marking
    // of cuts deeper in their subgraphs).
    let mut under_guard_callees: Vec<usize> = Vec::new();

    for id in g.nodes_under(ws, &cfg.lock_scope).collect::<Vec<_>>() {
        let src = &ws.sources[g.nodes[id].src];
        let p = &src.parsed;
        let tokens = &p.tokens;
        let (bs, be) = g.nodes[id].body;
        let fn_name = &g.nodes[id].name;
        // An allow on this fn's own line excuses every finding in its body.
        let fn_allow = p.allow_line("L009", g.nodes[id].line);
        // Edges grouped by call token, for the under-guard callee check.
        let mut edges_at: HashMap<usize, Vec<CallSite>> = HashMap::new();
        for e in &g.edges[id] {
            edges_at.entry(e.token).or_default().push(*e);
        }
        // Nested child fn bodies get their own walk; skip their tokens.
        let children: Vec<(usize, usize)> = g.nodes_of_src[&g.nodes[id].src]
            .iter()
            .map(|&c| g.nodes[c].body)
            .filter(|&(cs, ce)| bs < cs && ce < be)
            .collect();

        let mut depth = 0usize;
        let mut brackets = 0usize;
        let mut guards: Vec<LiveGuard> = Vec::new();
        let mut pending_let: Option<String> = None;
        let mut i = bs + 1;
        while i < be {
            if let Some(&(_, ce)) = children.iter().find(|&&(cs, _)| cs == i) {
                i = ce + 1;
                continue;
            }
            let t = &tokens[i];
            match &t.tok {
                Tok::Punct('{') => depth += 1,
                Tok::Punct('}') => {
                    depth = depth.saturating_sub(1);
                    guards.retain(|gd| gd.depth <= depth);
                }
                Tok::Punct('[') => brackets += 1,
                Tok::Punct(']') => brackets = brackets.saturating_sub(1),
                Tok::Punct(';') if brackets == 0 => {
                    pending_let = None;
                    guards.retain(|gd| !(gd.statement_only && gd.depth == depth));
                }
                Tok::Ident(name) if name == "let" => {
                    let mut j = i + 1;
                    if matches!(tokens.get(j).map(|t| &t.tok), Some(Tok::Ident(m)) if m == "mut") {
                        j += 1;
                    }
                    if let Some(Tok::Ident(b)) = tokens.get(j).map(|t| &t.tok) {
                        pending_let = Some(b.clone());
                    }
                }
                Tok::Ident(name) if name == "drop" => {
                    if let (Some(Tok::Punct('(')), Some(Tok::Ident(arg))) = (
                        tokens.get(i + 1).map(|t| &t.tok),
                        tokens.get(i + 2).map(|t| &t.tok),
                    ) {
                        guards.retain(|gd| gd.name.as_deref() != Some(arg.as_str()));
                    }
                }
                Tok::Ident(_) => {
                    if let Some(kind) = acquisition(src, i, &guard_helpers) {
                        if !guards.is_empty() {
                            let upgrade = kind == GuardKind::Write
                                && guards.iter().any(|gd| gd.kind == GuardKind::Read);
                            let (what, text) = if upgrade {
                                (
                                    "read-write-upgrade",
                                    "a `.write()` acquisition while a read guard is live \
                                     self-deadlocks on the same shard",
                                )
                            } else {
                                (
                                    "nested-lock",
                                    "a second lock acquisition while a guard is live risks \
                                     deadlock; drop the first guard (or scope it) first",
                                )
                            };
                            if let Some(dl) = p.allow_line("L009", t.line) {
                                ctx.mark_allow_used(&src.path, dl);
                            } else if let Some(dl) = fn_allow {
                                ctx.mark_allow_used(&src.path, dl);
                            } else {
                                findings.push(Finding::new(
                                    "L009",
                                    &src.path,
                                    t.line,
                                    format!("{fn_name}::{what}"),
                                    format!("in `{fn_name}`: {text}"),
                                ));
                            }
                        }
                        // A guard immediately consumed by further chaining
                        // (`shard.read().config()`) is a temporary even in a
                        // `let`: the binding holds the chained result, not
                        // the guard, so it dies at the statement's end.
                        let chained = {
                            let mut k = i + 1;
                            let mut d = 0usize;
                            let mut close = None;
                            while k < be {
                                match tokens[k].tok {
                                    Tok::Punct('(') => d += 1,
                                    Tok::Punct(')') => {
                                        d -= 1;
                                        if d == 0 {
                                            close = Some(k);
                                            break;
                                        }
                                    }
                                    _ => {}
                                }
                                k += 1;
                            }
                            matches!(
                                close.and_then(|c| tokens.get(c + 1)).map(|t| &t.tok),
                                Some(Tok::Punct('.'))
                            )
                        };
                        guards.push(LiveGuard {
                            name: if chained { None } else { pending_let.clone() },
                            depth,
                            statement_only: chained || pending_let.is_none(),
                            kind,
                        });
                    } else if blocking_io(src, i, cfg) {
                        if !guards.is_empty() {
                            if let Some(dl) = p.allow_line("L009", t.line) {
                                ctx.mark_allow_used(&src.path, dl);
                            } else if let Some(dl) = fn_allow {
                                ctx.mark_allow_used(&src.path, dl);
                            } else {
                                findings.push(Finding::new(
                                    "L009",
                                    &src.path,
                                    t.line,
                                    format!("{fn_name}::blocking-io"),
                                    format!(
                                        "blocking I/O in `{fn_name}` while a lock guard is \
                                         live stalls every reader of the shard; hoist the \
                                         I/O out of the lock scope"
                                    ),
                                ));
                            }
                        }
                    } else if !guards.is_empty() {
                        for e in edges_at.get(&i).into_iter().flatten() {
                            under_guard_callees.push(e.callee);
                            // A fn-line allow on the callee cuts the node.
                            let callee_src = &ws.sources[g.nodes[e.callee].src];
                            if let Some(dl) =
                                callee_src.parsed.allow_line("L009", g.nodes[e.callee].line)
                            {
                                if reach_acq_raw[e.callee] || reach_io_raw[e.callee] {
                                    ctx.mark_allow_used(&callee_src.path, dl);
                                }
                                continue;
                            }
                            let hits_lock = reach_acq[e.callee];
                            let hits_io = reach_io[e.callee];
                            if !hits_lock && !hits_io {
                                continue;
                            }
                            if let Some(dl) = p.allow_line("L009", t.line) {
                                ctx.mark_allow_used(&src.path, dl);
                                continue;
                            }
                            if let Some(dl) = fn_allow {
                                ctx.mark_allow_used(&src.path, dl);
                                continue;
                            }
                            let (what, direct) = if hits_lock {
                                ("lock", &acq)
                            } else {
                                ("io", &io)
                            };
                            let chain = sink_chain(g, e.callee, direct, &edge_ok);
                            let chain_text = g.chain_display(&chain);
                            let chain_field: Vec<String> = chain
                                .iter()
                                .map(|&(v, _)| {
                                    format!(
                                        "{} @ {}:{}",
                                        g.nodes[v].qual,
                                        ws.sources[g.nodes[v].src].path,
                                        g.nodes[v].line
                                    )
                                })
                                .collect();
                            findings.push(
                                Finding::new(
                                    "L009",
                                    &src.path,
                                    t.line,
                                    format!(
                                        "{fn_name}::{}->reaches-{what}",
                                        g.nodes[e.callee].name
                                    ),
                                    format!(
                                        "`{}` is called in `{fn_name}` while a lock guard \
                                         is live and reaches {} via `{chain_text}`; hoist \
                                         the call out of the lock scope or cut the chain \
                                         with `// lint: allow(L009) <reason>`",
                                        g.nodes[e.callee].name,
                                        if what == "lock" {
                                            "another lock acquisition"
                                        } else {
                                            "blocking I/O"
                                        }
                                    ),
                                )
                                .with_chain(chain_field),
                            );
                            break; // one finding per call site
                        }
                    }
                }
                _ => {}
            }
            i += 1;
        }
    }

    // Allow-consumption for cuts deeper in under-guard subgraphs: any
    // directive that removes a raw-reachable sink token or edge is live.
    let reachable = g.bfs_parents(&under_guard_callees, &every_edge);
    for id in 0..n {
        if reachable[id].is_none() {
            continue;
        }
        let src = &ws.sources[g.nodes[id].src];
        // A fn-line allow is live while the uncut graph still reaches a sink
        // in or below this node.
        if reach_acq_raw[id] || reach_io_raw[id] {
            if let Some(dl) = src.parsed.allow_line("L009", g.nodes[id].line) {
                ctx.mark_allow_used(&src.path, dl);
            }
        }
        let (bs, be) = g.nodes[id].body;
        for i in bs + 1..be {
            if acquisition(src, i, &guard_helpers).is_some() || blocking_io(src, i, cfg) {
                if let Some(dl) = src.parsed.allow_line("L009", src.parsed.tokens[i].line) {
                    ctx.mark_allow_used(&src.path, dl);
                }
            }
        }
        for e in &g.edges[id] {
            if reach_acq_raw[e.callee] || reach_io_raw[e.callee] {
                if let Some(dl) = src.parsed.allow_line("L009", e.line) {
                    ctx.mark_allow_used(&src.path, dl);
                }
            }
        }
    }

    findings
}

/// Shortest chain from `from` to the nearest node that *directly* contains
/// a sink (`direct[v]`), over the allow-filtered edge set.
fn sink_chain(
    g: &CallGraph,
    from: usize,
    direct: &[bool],
    edge_ok: &dyn Fn(usize, &CallSite) -> bool,
) -> Vec<(usize, u32)> {
    let parents = g.bfs_parents(&[from], edge_ok);
    let mut best: Option<Vec<(usize, u32)>> = None;
    for v in 0..g.nodes.len() {
        if parents[v].is_none() || !direct[v] {
            continue;
        }
        let chain = g.chain_to(&parents, v);
        if best.as_ref().is_none_or(|b| chain.len() < b.len()) {
            best = Some(chain);
        }
    }
    best.unwrap_or_else(|| vec![(from, 0)])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::ParsedFile;
    use crate::rules::RuleCtx;
    use std::path::PathBuf;

    fn run_on(files: &[(&str, &str)]) -> Vec<Finding> {
        let ws = Workspace {
            root: PathBuf::from("/nonexistent"),
            sources: files
                .iter()
                .map(|(p, s)| Source {
                    path: p.to_string(),
                    parsed: ParsedFile::parse(s),
                })
                .collect(),
            ci_script: None,
            env_registry: None,
        };
        let cfg = Config::repo();
        let ctx = RuleCtx::new(&ws, &cfg);
        run(&ws, &cfg, &ctx)
    }

    const LOCK: &str = "std::sync::RwLock<u32>";

    #[test]
    fn transitive_acquisition_under_a_guard_is_flagged_with_chain() {
        let src = format!(
            "fn helper(l: &{LOCK}) -> u32 {{ *l.write() }}\n\
             pub fn entry(l: &{LOCK}) -> u32 {{\n    \
             let g = l.read();\n    let v = helper(l);\n    drop(g);\n    v\n}}\n"
        );
        let findings = run_on(&[("crates/core/src/engine/mod.rs", &src)]);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].detail, "entry::helper->reaches-lock");
        assert!(findings[0].chain[0].contains("helper"));
    }

    #[test]
    fn read_write_upgrade_is_flagged_explicitly() {
        let src = format!(
            "pub fn entry(l: &{LOCK}) -> u32 {{\n    \
             let g = l.read();\n    let w = l.write();\n    drop(w);\n    drop(g);\n    0\n}}\n"
        );
        let findings = run_on(&[("crates/core/src/engine/mod.rs", &src)]);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].detail, "entry::read-write-upgrade");
    }

    #[test]
    fn chained_guard_is_a_temporary_even_under_let() {
        // `l.read().checked_add(1)` binds the chained result, not the guard;
        // the guard dies at the semicolon, so the write does not upgrade.
        let src = format!(
            "pub fn entry(l: &{LOCK}) -> u32 {{\n    \
             let n = l.read().checked_add(1).unwrap_or(0);\n    \
             let w = l.write();\n    drop(w);\n    n\n}}\n"
        );
        let findings = run_on(&[("crates/core/src/engine/mod.rs", &src)]);
        assert!(findings.is_empty(), "{:?}", findings[0].detail);
    }

    #[test]
    fn dropping_the_guard_ends_its_scope() {
        let src = format!(
            "fn helper(l: &{LOCK}) -> u32 {{ *l.write() }}\n\
             pub fn entry(l: &{LOCK}) -> u32 {{\n    \
             let g = l.read();\n    drop(g);\n    helper(l)\n}}\n"
        );
        let findings = run_on(&[("crates/core/src/engine/mod.rs", &src)]);
        assert!(findings.is_empty());
    }

    #[test]
    fn blocking_io_under_a_guard_is_flagged() {
        let src = format!(
            "pub fn entry(l: &{LOCK}) -> u32 {{\n    \
             let g = l.write();\n    let _ = std::fs::write(\"p\", \"x\");\n    *g\n}}\n"
        );
        let findings = run_on(&[("crates/core/src/engine/mod.rs", &src)]);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].detail, "entry::blocking-io");
    }
}
