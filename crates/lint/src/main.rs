//! The `projtile-lint` driver.
//!
//! ```text
//! projtile-lint [--root DIR] [--baseline FILE] [--json] [--write-baseline FILE]
//!               [--explain RULE]
//! ```
//!
//! Exit codes: `0` — no findings beyond the baseline; `1` — at least one new
//! finding; `2` — usage or I/O error. See `docs/lints.md` for the catalog.

use std::io::Write;
use std::path::PathBuf;
use std::process::ExitCode;

use projtile_lint::{findings, run_lint, Baseline, Config};

struct Args {
    root: PathBuf,
    baseline: Option<PathBuf>,
    json: bool,
    write_baseline: Option<PathBuf>,
    explain: Option<String>,
}

const USAGE: &str = "usage: projtile-lint [--root DIR] [--baseline FILE] [--json] \
                     [--write-baseline FILE] [--explain RULE]";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: PathBuf::from("."),
        baseline: None,
        json: false,
        write_baseline: None,
        explain: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--root" => args.root = next_value(&mut it, "--root")?.into(),
            "--baseline" => args.baseline = Some(next_value(&mut it, "--baseline")?.into()),
            "--write-baseline" => {
                args.write_baseline = Some(next_value(&mut it, "--write-baseline")?.into());
            }
            "--json" => args.json = true,
            "--explain" => args.explain = Some(next_value(&mut it, "--explain")?),
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown option `{other}`\n{USAGE}")),
        }
    }
    Ok(args)
}

fn next_value(it: &mut impl Iterator<Item = String>, flag: &str) -> Result<String, String> {
    it.next()
        .ok_or_else(|| format!("{flag} needs a value\n{USAGE}"))
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("projtile-lint: {msg}");
            ExitCode::from(2)
        }
    }
}

fn run() -> Result<ExitCode, String> {
    let args = parse_args()?;
    if let Some(rule) = &args.explain {
        return explain(&args.root, rule);
    }
    let config = Config::repo();
    let found = run_lint(&args.root, &config)?;

    if let Some(path) = &args.write_baseline {
        std::fs::write(path, Baseline::render(&found))
            .map_err(|e| format!("failed to write {}: {e}", path.display()))?;
        eprintln!(
            "projtile-lint: wrote {} finding(s) to {}",
            found.len(),
            path.display()
        );
        return Ok(ExitCode::SUCCESS);
    }

    let baseline = match &args.baseline {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("failed to read baseline {}: {e}", path.display()))?;
            Baseline::parse(&text)?
        }
        None => Baseline::default(),
    };

    let annotated: Vec<(projtile_lint::Finding, bool)> = found
        .into_iter()
        .map(|f| {
            let suppressed = baseline.contains(&f);
            (f, suppressed)
        })
        .collect();
    let new = annotated.iter().filter(|(_, b)| !b).count();
    let suppressed = annotated.len() - new;

    // Best-effort stdout: a closed pipe (`projtile-lint --json | head`) must
    // not turn a lint run into a panic — the exit code is the contract.
    let mut out = std::io::stdout().lock();
    if args.json {
        let _ = writeln!(out, "{}", findings::to_json(&annotated));
    } else {
        for (f, baselined) in &annotated {
            if !baselined {
                let _ = writeln!(out, "{f}");
            }
        }
        let _ = writeln!(
            out,
            "projtile-lint: {} finding(s): {new} new, {suppressed} suppressed by baseline",
            annotated.len()
        );
    }
    Ok(if new == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

/// Prints rule `rule`'s entry from the catalog (`docs/lints.md` under
/// `root`): the `### RULE — …` section up to the next heading.
fn explain(root: &std::path::Path, rule: &str) -> Result<ExitCode, String> {
    let rule = rule.to_ascii_uppercase();
    let path = root.join("docs/lints.md");
    let text = std::fs::read_to_string(&path)
        .map_err(|e| format!("failed to read {}: {e}", path.display()))?;
    let mut section = String::new();
    let mut inside = false;
    for line in text.lines() {
        if let Some(head) = line.strip_prefix("### ") {
            inside = head.split_whitespace().next() == Some(rule.as_str());
            if inside {
                section.push_str(line);
                section.push('\n');
            }
            continue;
        }
        if inside {
            if line.starts_with("## ") {
                break;
            }
            section.push_str(line);
            section.push('\n');
        }
    }
    if section.is_empty() {
        return Err(format!(
            "no catalog entry for `{rule}` in {} (see its ## Rules section)",
            path.display()
        ));
    }
    let mut out = std::io::stdout().lock();
    let _ = write!(out, "{}", section.trim_end_matches('\n'));
    let _ = writeln!(out);
    Ok(ExitCode::SUCCESS)
}
