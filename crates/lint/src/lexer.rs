//! A small, real Rust lexer.
//!
//! The rules in this crate reason about token streams, never raw text, so
//! `panic!` inside a string literal, a nested block comment, or a doc example
//! can never produce a finding. The lexer therefore has to get the genuinely
//! tricky parts of Rust's lexical grammar right:
//!
//! * raw strings with arbitrary hash fences (`r##"…"##`), byte strings
//!   (`b"…"`), raw byte strings (`br#"…"#`), and raw identifiers (`r#fn`);
//! * nested block comments (`/* /* */ */` is one comment);
//! * the `'a` lifetime vs `'a'` char-literal ambiguity (including escapes
//!   like `'\''` and byte chars `b'x'`);
//! * escape sequences inside cooked strings (`"\""` does not end early).
//!
//! It is deliberately lossy everywhere the rules do not care: numeric values
//! are not parsed, keywords are ordinary identifiers, and multi-character
//! operators arrive as single punctuation tokens.

/// One lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// An identifier or keyword (raw identifiers arrive without `r#`).
    Ident(String),
    /// A lifetime such as `'a` or `'static` (without the quote).
    Lifetime(String),
    /// A character or byte literal (`'x'`, `b'\n'`). Contents are not kept.
    Char,
    /// A string literal of any flavor; carries the uncooked contents
    /// (escape sequences are left as written — the rules only substring-match).
    Str(String),
    /// A numeric literal. Contents are not kept.
    Num,
    /// Any other single character (`{`, `}`, `.`, `!`, `#`, …).
    Punct(char),
}

/// A token plus the 1-based line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token itself.
    pub tok: Tok,
    /// 1-based source line of the token's first character.
    pub line: u32,
}

/// A comment (line or block), kept separately from the token stream so the
/// parser can recognize `// lint: allow(...)` escape hatches.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// Comment text without the `//` / `/*` markers, trimmed.
    pub text: String,
    /// 1-based line the comment starts on.
    pub line: u32,
}

/// The result of lexing one file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// All non-comment tokens in source order.
    pub tokens: Vec<Token>,
    /// All comments in source order.
    pub comments: Vec<Comment>,
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

struct Cursor<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
}

impl<'a> Cursor<'a> {
    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek_at(&self, off: usize) -> Option<u8> {
        self.src.get(self.pos + off).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
        }
        Some(c)
    }

    /// Consumes `n` bytes (which must not contain fewer than `n` remaining).
    fn bump_n(&mut self, n: usize) {
        for _ in 0..n {
            self.bump();
        }
    }

    fn take_while(&mut self, f: impl Fn(char) -> bool) -> String {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if f(c as char) {
                self.bump();
            } else {
                break;
            }
        }
        String::from_utf8_lossy(&self.src[start..self.pos]).into_owned()
    }
}

/// Lexes `src`, producing tokens and comments. Never fails: unterminated
/// literals and stray bytes are consumed best-effort so the rules can still
/// run over files that do not currently compile.
pub fn lex(src: &str) -> Lexed {
    let mut cur = Cursor {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
    };
    let mut out = Lexed::default();

    while let Some(c) = cur.peek() {
        let line = cur.line;
        match c {
            b' ' | b'\t' | b'\r' | b'\n' => {
                cur.bump();
            }
            b'/' if cur.peek_at(1) == Some(b'/') => {
                cur.bump_n(2);
                let text = cur.take_while(|c| c != '\n');
                out.comments.push(Comment {
                    text: text.trim_start_matches('/').trim().to_string(),
                    line,
                });
            }
            b'/' if cur.peek_at(1) == Some(b'*') => {
                cur.bump_n(2);
                let start = cur.pos;
                let mut depth = 1usize;
                while depth > 0 {
                    match (cur.peek(), cur.peek_at(1)) {
                        (Some(b'/'), Some(b'*')) => {
                            depth += 1;
                            cur.bump_n(2);
                        }
                        (Some(b'*'), Some(b'/')) => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                            cur.bump_n(2);
                        }
                        (Some(_), _) => {
                            cur.bump();
                        }
                        (None, _) => break,
                    }
                }
                let text = String::from_utf8_lossy(&cur.src[start..cur.pos]).into_owned();
                cur.bump_n(2); // closing */ (no-op at EOF)
                out.comments.push(Comment {
                    text: text.trim_start_matches('*').trim().to_string(),
                    line,
                });
            }
            b'\'' => lex_quote(&mut cur, &mut out, line),
            b'"' => {
                cur.bump();
                let content = cooked_string_body(&mut cur, b'"');
                out.tokens.push(Token {
                    tok: Tok::Str(content),
                    line,
                });
            }
            _ if is_ident_start(c as char) => lex_ident_or_prefixed(&mut cur, &mut out, line),
            _ if (c as char).is_ascii_digit() => {
                cur.bump();
                cur.take_while(is_ident_continue);
                // A fraction part: `1.5` but not the range `1..5` and not a
                // method call on a literal (`1.max(2)` — digit follows only
                // in the fraction case).
                if cur.peek() == Some(b'.')
                    && cur.peek_at(1).is_some_and(|d| (d as char).is_ascii_digit())
                {
                    cur.bump();
                    cur.take_while(is_ident_continue);
                }
                out.tokens.push(Token {
                    tok: Tok::Num,
                    line,
                });
            }
            _ => {
                cur.bump();
                out.tokens.push(Token {
                    tok: Tok::Punct(c as char),
                    line,
                });
            }
        }
    }
    out
}

/// Lexes from a `'`: either a lifetime (`'a`, `'_`, `'static`) or a char
/// literal (`'a'`, `'\n'`, `'\''`).
fn lex_quote(cur: &mut Cursor<'_>, out: &mut Lexed, line: u32) {
    cur.bump(); // the opening '
    match cur.peek() {
        // Escaped char literal: always a char, consume through the closing '.
        Some(b'\\') => {
            cur.bump();
            cur.bump(); // the escaped character (handles '\'' and '\\')
            cur.take_while(|c| c != '\'');
            cur.bump(); // closing '
            out.tokens.push(Token {
                tok: Tok::Char,
                line,
            });
        }
        Some(c) if is_ident_start(c as char) => {
            let name = cur.take_while(is_ident_continue);
            if cur.peek() == Some(b'\'') {
                // 'a' — a char literal after all.
                cur.bump();
                out.tokens.push(Token {
                    tok: Tok::Char,
                    line,
                });
            } else {
                out.tokens.push(Token {
                    tok: Tok::Lifetime(name),
                    line,
                });
            }
        }
        // 'x' where x is not an identifier char (e.g. '+', '.').
        Some(_) => {
            cur.bump();
            if cur.peek() == Some(b'\'') {
                cur.bump();
            }
            out.tokens.push(Token {
                tok: Tok::Char,
                line,
            });
        }
        None => out.tokens.push(Token {
            tok: Tok::Punct('\''),
            line,
        }),
    }
}

/// Consumes a cooked (escape-processing) string body after the opening quote,
/// returning the raw contents (escapes left as written).
fn cooked_string_body(cur: &mut Cursor<'_>, close: u8) -> String {
    let start = cur.pos;
    loop {
        match cur.peek() {
            Some(b'\\') => {
                cur.bump();
                cur.bump(); // the escaped byte (covers \" and \\)
            }
            Some(c) if c == close => break,
            Some(_) => {
                cur.bump();
            }
            None => break,
        }
    }
    let content = String::from_utf8_lossy(&cur.src[start..cur.pos]).into_owned();
    cur.bump(); // closing quote (no-op at EOF)
    content
}

/// Lexes an identifier, or one of the literal prefixes `r` / `b` / `br` /
/// `rb`-less forms: `r"…"`, `r#"…"#`, `b"…"`, `b'…'`, `br#"…"#`, and raw
/// identifiers `r#name`.
fn lex_ident_or_prefixed(cur: &mut Cursor<'_>, out: &mut Lexed, line: u32) {
    // Raw string after `r` or `br`, raw identifier after `r#`.
    let (prefix_len, byte) = match (cur.peek(), cur.peek_at(1)) {
        (Some(b'r'), _) => (1, false),
        (Some(b'b'), Some(b'r')) => (2, true),
        (Some(b'b'), _) => (1, true),
        _ => (0, false),
    };
    if prefix_len > 0 {
        let after = cur.peek_at(prefix_len);
        // Count hash fence after the prefix.
        let mut hashes = 0usize;
        while cur.peek_at(prefix_len + hashes) == Some(b'#') {
            hashes += 1;
        }
        let fence_next = cur.peek_at(prefix_len + hashes);
        let is_raw_marker = cur.peek_at(prefix_len - 1) == Some(b'r');
        if is_raw_marker && fence_next == Some(b'"') {
            // r"…" / r#"…"# / br##"…"## with any number of hashes.
            cur.bump_n(prefix_len + hashes + 1);
            let start = cur.pos;
            let end;
            'search: loop {
                match cur.peek() {
                    Some(b'"') => {
                        let mut ok = true;
                        for h in 0..hashes {
                            if cur.peek_at(1 + h) != Some(b'#') {
                                ok = false;
                                break;
                            }
                        }
                        if ok {
                            end = cur.pos;
                            cur.bump_n(1 + hashes);
                            break 'search;
                        }
                        cur.bump();
                    }
                    Some(_) => {
                        cur.bump();
                    }
                    None => {
                        end = cur.pos;
                        break 'search;
                    }
                }
            }
            let content = String::from_utf8_lossy(&cur.src[start..end]).into_owned();
            out.tokens.push(Token {
                tok: Tok::Str(content),
                line,
            });
            return;
        }
        if is_raw_marker
            && hashes == 1
            && fence_next.is_some_and(|c| is_ident_start(c as char))
            && prefix_len == 1
        {
            // Raw identifier r#name.
            cur.bump_n(2);
            let name = cur.take_while(is_ident_continue);
            out.tokens.push(Token {
                tok: Tok::Ident(name),
                line,
            });
            return;
        }
        if byte && hashes == 0 && after == Some(b'"') {
            // b"…": cooked byte string.
            cur.bump_n(prefix_len + 1);
            let content = cooked_string_body(cur, b'"');
            out.tokens.push(Token {
                tok: Tok::Str(content),
                line,
            });
            return;
        }
        if byte && hashes == 0 && after == Some(b'\'') && prefix_len == 1 {
            // b'x': byte char literal; reuse the quote lexer.
            cur.bump();
            lex_quote(cur, out, line);
            // lex_quote pushed Char or (never for b'…') a lifetime.
            if let Some(Token {
                tok: Tok::Lifetime(_),
                ..
            }) = out.tokens.last()
            {
                // Defensive: b'static is not valid Rust; treat as char.
                out.tokens.pop();
                out.tokens.push(Token {
                    tok: Tok::Char,
                    line,
                });
            }
            return;
        }
    }
    let name = cur.take_while(is_ident_continue);
    out.tokens.push(Token {
        tok: Tok::Ident(name),
        line,
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter_map(|t| match t.tok {
                Tok::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn panic_in_string_is_not_an_ident() {
        let l = lex(r#"let s = "panic!(\"no\")"; other();"#);
        assert_eq!(
            idents(r#"let s = "panic!(\"no\")"; other();"#),
            ["let", "s", "other"]
        );
        assert!(l
            .tokens
            .iter()
            .any(|t| matches!(&t.tok, Tok::Str(s) if s.contains("panic"))));
    }

    #[test]
    fn nested_block_comment_is_one_comment() {
        let l = lex("a /* x /* y */ z */ b");
        assert_eq!(idents("a /* x /* y */ z */ b"), ["a", "b"]);
        assert_eq!(l.comments.len(), 1);
    }

    #[test]
    fn lifetime_vs_char() {
        let l = lex("fn f<'a>(x: &'a str) { let c = 'a'; let d = '\\''; }");
        let lifetimes: Vec<_> = l
            .tokens
            .iter()
            .filter(|t| matches!(t.tok, Tok::Lifetime(_)))
            .collect();
        let chars = l
            .tokens
            .iter()
            .filter(|t| matches!(t.tok, Tok::Char))
            .count();
        assert_eq!(lifetimes.len(), 2);
        assert_eq!(chars, 2);
    }

    #[test]
    fn raw_strings_with_hashes() {
        let l = lex(r####"let s = r#"inner "quoted" panic!"#; done();"####);
        assert!(matches!(&l.tokens[3].tok, Tok::Str(s) if s == r#"inner "quoted" panic!"#));
        assert_eq!(
            idents(r####"let s = r#"inner "quoted" panic!"#; done();"####),
            ["let", "s", "done"]
        );
    }

    #[test]
    fn byte_and_raw_byte_strings() {
        let l = lex(r##"let a = b"bytes"; let b = br#"raw "bytes""#; let c = b'x';"##);
        let strs: Vec<_> = l
            .tokens
            .iter()
            .filter_map(|t| match &t.tok {
                Tok::Str(s) => Some(s.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(strs, ["bytes", r#"raw "bytes""#]);
        assert_eq!(
            l.tokens
                .iter()
                .filter(|t| matches!(t.tok, Tok::Char))
                .count(),
            1
        );
    }

    #[test]
    fn raw_identifier() {
        assert_eq!(idents("let r#fn = 1;"), ["let", "fn"]);
    }

    #[test]
    fn lines_are_tracked_through_multiline_constructs() {
        let src = "a\n/* one\ntwo */\nb\n\"x\ny\"\nc";
        let l = lex(src);
        let lines: Vec<u32> = l
            .tokens
            .iter()
            .filter(|t| matches!(t.tok, Tok::Ident(_)))
            .map(|t| t.line)
            .collect();
        assert_eq!(lines, [1, 4, 7]);
    }
}
