//! Item-level parsing over the token stream.
//!
//! This is not a full Rust parser (no `syn` in the workspace, by design —
//! the same constraint `shims/serde_derive` lives under). It recovers exactly
//! the structure the rules need:
//!
//! * brace depth and matched scopes;
//! * crate-level inner attributes (`#![forbid(unsafe_code)]`);
//! * outer attributes attached to the following item (`#[cfg(test)]`,
//!   `#[test]`, derives);
//! * `fn` items: name, line, visibility, and body token range (so a finding
//!   can name its enclosing function);
//! * test regions: the bodies of `#[cfg(test)] mod`s / `#[test]` fns /
//!   `#[cfg(test)]`-gated items, in which the panic-surface rule is silent;
//! * `// lint: allow(<RULE>) <reason>` escape-hatch directives.

use crate::lexer::{lex, Tok, Token};

/// A function item recovered from the token stream.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Function name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Whether any `pub` marker precedes the `fn` (any visibility scope).
    pub is_pub: bool,
    /// Token-index range of the body, `body_start..body_end` (the indices of
    /// the `{` and the matching `}`); `None` for bodyless declarations.
    pub body: Option<(usize, usize)>,
}

/// One `// lint: allow(RULE) reason` directive.
#[derive(Debug, Clone)]
pub struct AllowDirective {
    /// The rule id, e.g. `L002`.
    pub rule: String,
    /// 1-based line the directive is written on.
    pub line: u32,
    /// Whether a non-empty justification follows the rule id.
    pub has_reason: bool,
}

/// The parsed view of one source file.
#[derive(Debug, Default)]
pub struct ParsedFile {
    /// The token stream.
    pub tokens: Vec<Token>,
    /// Crate-level inner attributes (`#![…]`), rendered as flat text with
    /// single spaces removed, e.g. `forbid(unsafe_code)`.
    pub inner_attrs: Vec<String>,
    /// All functions, in source order (nested functions included).
    pub fns: Vec<FnItem>,
    /// Token-index ranges whose contents are test-only code.
    pub test_regions: Vec<(usize, usize)>,
    /// `// lint: allow(...)` directives, in source order.
    pub allows: Vec<AllowDirective>,
}

impl ParsedFile {
    /// Parses `src`.
    pub fn parse(src: &str) -> ParsedFile {
        let lexed = lex(src);
        let mut out = ParsedFile {
            tokens: lexed.tokens,
            ..ParsedFile::default()
        };
        for c in &lexed.comments {
            if let Some(d) = parse_allow(c.text.trim(), c.line) {
                out.allows.push(d);
            }
        }
        scan_items(&mut out);
        out
    }

    /// Whether token index `i` lies inside a test-only region.
    pub fn in_test_code(&self, i: usize) -> bool {
        self.test_regions.iter().any(|&(s, e)| s < i && i < e)
    }

    /// The innermost function whose body contains token index `i`.
    pub fn enclosing_fn(&self, i: usize) -> Option<&FnItem> {
        self.fns
            .iter()
            .filter(|f| f.body.is_some_and(|(s, e)| s < i && i < e))
            .min_by_key(|f| f.body.map(|(s, e)| e - s).unwrap_or(usize::MAX))
    }

    /// Whether some crate-level inner attribute is `level(… word …)` for one
    /// of the given lint levels — e.g. `parsed_attr_matches(&["forbid",
    /// "deny"], "unsafe_code")` accepts both `#![forbid(unsafe_code)]` and a
    /// combined `#![deny(unsafe_code, missing_docs)]`.
    pub fn parsed_attr_matches(&self, levels: &[&str], word: &str) -> bool {
        self.inner_attrs
            .iter()
            .any(|a| levels.iter().any(|lv| a.starts_with(&format!("{lv}("))) && has_word(a, word))
    }

    /// Whether an `allow(rule)` directive with a reason covers `line`
    /// (written on the finding's line or on the line directly above it).
    pub fn allowed(&self, rule: &str, line: u32) -> bool {
        self.allows
            .iter()
            .any(|d| d.rule == rule && d.has_reason && (d.line == line || d.line + 1 == line))
    }
}

/// Parses `lint: allow(RULE) reason` from a comment body.
fn parse_allow(text: &str, line: u32) -> Option<AllowDirective> {
    let rest = text.strip_prefix("lint:")?.trim_start();
    let rest = rest.strip_prefix("allow")?.trim_start();
    let rest = rest.strip_prefix('(')?;
    let close = rest.find(')')?;
    let rule = rest[..close].trim().to_string();
    let reason = rest[close + 1..].trim();
    Some(AllowDirective {
        rule,
        line,
        has_reason: !reason.is_empty(),
    })
}

fn ident_at(tokens: &[Token], i: usize) -> Option<&str> {
    match tokens.get(i).map(|t| &t.tok) {
        Some(Tok::Ident(s)) => Some(s.as_str()),
        _ => None,
    }
}

/// Renders the tokens of an attribute body as compact text, e.g.
/// `cfg(test)`, `derive(Debug,Clone)`.
fn attr_text(tokens: &[Token], start: usize, end: usize) -> String {
    let mut s = String::new();
    for t in &tokens[start..end] {
        match &t.tok {
            Tok::Ident(id) => {
                if s.ends_with(|c: char| c.is_alphanumeric() || c == '_') {
                    s.push(' ');
                }
                s.push_str(id);
            }
            Tok::Lifetime(l) => {
                s.push('\'');
                s.push_str(l);
            }
            Tok::Str(v) => {
                s.push('"');
                s.push_str(v);
                s.push('"');
            }
            Tok::Char => s.push_str("'_'"),
            Tok::Num => s.push('0'),
            Tok::Punct(c) => s.push(*c),
        }
    }
    s
}

/// Whether `word` appears in `text` with non-identifier characters (or the
/// string edges) on both sides.
fn has_word(text: &str, word: &str) -> bool {
    let mut from = 0;
    while let Some(at) = text[from..].find(word) {
        let start = from + at;
        let end = start + word.len();
        let before_ok = start == 0
            || !text[..start]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after_ok = end == text.len()
            || !text[end..]
                .chars()
                .next()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return true;
        }
        from = end;
    }
    false
}

/// Whether an outer attribute marks the following item as test-only.
fn is_test_attr(text: &str) -> bool {
    text == "test"
        || text.starts_with("test(")
        || (text.starts_with("cfg(") && has_word(text, "test"))
}

/// Walks the token stream once, recovering items, attributes, and scopes.
fn scan_items(out: &mut ParsedFile) {
    let tokens = &out.tokens;
    // Set when pending outer attributes mark the next braced item test-only.
    let mut pending_test = false;
    // A `fn` whose body `{` has not been seen yet.
    let mut open_fn: Option<usize> = None;
    // `()` / `[]` nesting, so `;` inside `[u8; 4]` is not an item end.
    let mut parens = 0usize;
    let mut brackets = 0usize;
    struct Scope {
        open_idx: usize,
        fn_idx: Option<usize>,
        test: bool,
    }
    let mut scopes: Vec<Scope> = Vec::new();
    let mut fns: Vec<FnItem> = Vec::new();
    let mut test_regions: Vec<(usize, usize)> = Vec::new();
    let mut inner_attrs: Vec<String> = Vec::new();

    let mut i = 0usize;
    while i < tokens.len() {
        match &tokens[i].tok {
            Tok::Punct('#') => {
                // Attribute: #[…] (outer) or #![…] (inner).
                let inner = matches!(tokens.get(i + 1).map(|t| &t.tok), Some(Tok::Punct('!')));
                let open = i + 1 + usize::from(inner);
                if matches!(tokens.get(open).map(|t| &t.tok), Some(Tok::Punct('['))) {
                    let mut j = open + 1;
                    let mut depth = 1usize;
                    while j < tokens.len() && depth > 0 {
                        match tokens[j].tok {
                            Tok::Punct('[') => depth += 1,
                            Tok::Punct(']') => depth -= 1,
                            _ => {}
                        }
                        j += 1;
                    }
                    let text = attr_text(tokens, open + 1, j.saturating_sub(1));
                    if inner {
                        if scopes.is_empty() {
                            inner_attrs.push(text);
                        }
                    } else if is_test_attr(&text) {
                        pending_test = true;
                    }
                    i = j;
                    continue;
                }
                i += 1;
            }
            Tok::Ident(kw) if kw == "fn" => {
                if let Some(name) = ident_at(tokens, i + 1) {
                    fns.push(FnItem {
                        name: name.to_string(),
                        line: tokens[i].line,
                        is_pub: is_pub_before(tokens, i),
                        body: None,
                    });
                    open_fn = Some(fns.len() - 1);
                }
                // pending_test stays set until the body `{` or a `;`.
                i += 1;
            }
            Tok::Punct('(') => {
                parens += 1;
                i += 1;
            }
            Tok::Punct(')') => {
                parens = parens.saturating_sub(1);
                i += 1;
            }
            Tok::Punct('[') => {
                brackets += 1;
                i += 1;
            }
            Tok::Punct(']') => {
                brackets = brackets.saturating_sub(1);
                i += 1;
            }
            Tok::Punct(';') if parens == 0 && brackets == 0 => {
                // Item/statement end before any body brace: a bodyless fn
                // declaration or `mod x;` — drop the pending markers.
                open_fn = None;
                pending_test = false;
                i += 1;
            }
            Tok::Punct('{') => {
                scopes.push(Scope {
                    open_idx: i,
                    fn_idx: open_fn.take(),
                    test: pending_test,
                });
                pending_test = false;
                i += 1;
            }
            Tok::Punct('}') => {
                if let Some(s) = scopes.pop() {
                    if let Some(f) = s.fn_idx {
                        fns[f].body = Some((s.open_idx, i));
                    }
                    if s.test {
                        test_regions.push((s.open_idx, i));
                    }
                }
                i += 1;
            }
            _ => {
                i += 1;
            }
        }
    }

    out.fns = fns;
    out.test_regions = test_regions;
    out.inner_attrs = inner_attrs;
}

/// Whether a `pub` marker directly precedes the item keyword at `i`
/// (skipping over a `(crate)` / `(super)` visibility scope and qualifiers
/// like `const`, `async`, `unsafe`, `extern "C"`).
fn is_pub_before(tokens: &[Token], i: usize) -> bool {
    let mut j = i;
    while j > 0 {
        j -= 1;
        match &tokens[j].tok {
            Tok::Ident(s) if s == "const" || s == "async" || s == "unsafe" || s == "extern" => {
                continue;
            }
            Tok::Str(_) => continue, // the ABI string of `extern "C"`
            Tok::Punct(')') => {
                // Possible visibility scope `(crate)` — walk to its `(`.
                while j > 0 && !matches!(tokens[j].tok, Tok::Punct('(')) {
                    j -= 1;
                }
                continue;
            }
            Tok::Ident(s) if s == "pub" => return true,
            _ => return false,
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_pub_fns_and_bodies() {
        let p = ParsedFile::parse(
            "pub fn a() { inner(); }\nfn b() {}\npub(crate) fn c() -> usize { 1 }\n",
        );
        let names: Vec<_> = p.fns.iter().map(|f| (f.name.as_str(), f.is_pub)).collect();
        assert_eq!(names, [("a", true), ("b", false), ("c", true)]);
        assert!(p.fns.iter().all(|f| f.body.is_some()));
    }

    #[test]
    fn cfg_test_mod_is_a_test_region() {
        let p = ParsedFile::parse(
            "fn prod() { x(); }\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { y(); }\n}\n",
        );
        assert_eq!(p.test_regions.len(), 2); // the mod and the #[test] fn
        let y_idx = p
            .tokens
            .iter()
            .position(|t| matches!(&t.tok, Tok::Ident(s) if s == "y"))
            .unwrap();
        let x_idx = p
            .tokens
            .iter()
            .position(|t| matches!(&t.tok, Tok::Ident(s) if s == "x"))
            .unwrap();
        assert!(p.in_test_code(y_idx));
        assert!(!p.in_test_code(x_idx));
    }

    #[test]
    fn inner_attrs_only_at_crate_level() {
        let p = ParsedFile::parse(
            "#![forbid(unsafe_code)]\n#![warn(missing_docs)]\nmod m {\n    #![allow(dead_code)]\n}\n",
        );
        assert_eq!(p.inner_attrs, ["forbid(unsafe_code)", "warn(missing_docs)"]);
    }

    #[test]
    fn allow_directives_need_reasons() {
        let p = ParsedFile::parse(
            "// lint: allow(L002) panics are the feature under test\nfn a() {}\n// lint: allow(L003)\nfn b() {}\n",
        );
        assert_eq!(p.allows.len(), 2);
        assert!(p.allowed("L002", 1));
        assert!(p.allowed("L002", 2)); // line-above form
        assert!(!p.allowed("L003", 4)); // no reason given
    }

    #[test]
    fn enclosing_fn_is_innermost() {
        let p = ParsedFile::parse("fn outer() { fn inner() { probe(); } }");
        let probe = p
            .tokens
            .iter()
            .position(|t| matches!(&t.tok, Tok::Ident(s) if s == "probe"))
            .unwrap();
        assert_eq!(p.enclosing_fn(probe).unwrap().name, "inner");
    }
}
