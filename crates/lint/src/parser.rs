//! Item-level parsing over the token stream.
//!
//! This is not a full Rust parser (no `syn` in the workspace, by design —
//! the same constraint `shims/serde_derive` lives under). It recovers exactly
//! the structure the rules need:
//!
//! * brace depth and matched scopes;
//! * crate-level inner attributes (`#![forbid(unsafe_code)]`);
//! * outer attributes attached to the following item (`#[cfg(test)]`,
//!   `#[test]`, derives);
//! * `fn` items: name, line, visibility, body token range, enclosing inline
//!   `mod` path, enclosing `impl` self type, and return-type identifiers
//!   (so a finding can name its enclosing function and the call graph can
//!   resolve methods and guard-returning helpers);
//! * test regions: the bodies of `#[cfg(test)] mod`s / `#[test]` fns /
//!   `#[cfg(test)]`-gated items, in which the panic-surface rule is silent;
//! * `use` declarations flattened into per-file alias→path entries (groups,
//!   `as` renames, and `*` globs included), for call-graph name resolution;
//! * `// lint: allow(<RULE>) <reason>` escape-hatch directives.

use crate::lexer::{lex, Tok, Token};

/// A function item recovered from the token stream.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Function name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Whether any `pub` marker precedes the `fn` (any visibility scope).
    pub is_pub: bool,
    /// Token-index range of the body, `body_start..body_end` (the indices of
    /// the `{` and the matching `}`); `None` for bodyless declarations.
    pub body: Option<(usize, usize)>,
    /// Names of the inline `mod` scopes enclosing the item, outermost first.
    /// The file-level module path (from the file's location) is not included.
    pub module: Vec<String>,
    /// The self type of the innermost enclosing `impl` block, if any —
    /// `Tableau` for both `impl Tableau` and `impl Display for Tableau`.
    pub self_type: Option<String>,
    /// All identifiers appearing in the return type (path segments and
    /// generic arguments alike) — enough to spot guard-returning helpers.
    pub ret_idents: Vec<String>,
}

/// One flattened `use` entry: `alias` is the name it binds in this file
/// (the last path segment, or the `as` rename), `"*"` for glob imports.
#[derive(Debug, Clone)]
pub struct UseDecl {
    /// Full path segments as written, including a leading `crate` / `self` /
    /// `super` / external-crate segment.
    pub path: Vec<String>,
    /// Name bound in this file; `"*"` for `use …::*`.
    pub alias: String,
}

/// One `// lint: allow(RULE) reason` directive.
#[derive(Debug, Clone)]
pub struct AllowDirective {
    /// The rule id, e.g. `L002`.
    pub rule: String,
    /// 1-based line the directive is written on.
    pub line: u32,
    /// Whether a non-empty justification follows the rule id.
    pub has_reason: bool,
}

/// The parsed view of one source file.
#[derive(Debug, Default)]
pub struct ParsedFile {
    /// The token stream.
    pub tokens: Vec<Token>,
    /// Crate-level inner attributes (`#![…]`), rendered as flat text with
    /// single spaces removed, e.g. `forbid(unsafe_code)`.
    pub inner_attrs: Vec<String>,
    /// All functions, in source order (nested functions included).
    pub fns: Vec<FnItem>,
    /// Token-index ranges whose contents are test-only code.
    pub test_regions: Vec<(usize, usize)>,
    /// `// lint: allow(...)` directives, in source order.
    pub allows: Vec<AllowDirective>,
    /// Flattened `use` declarations, in source order.
    pub uses: Vec<UseDecl>,
}

impl ParsedFile {
    /// Parses `src`.
    pub fn parse(src: &str) -> ParsedFile {
        let lexed = lex(src);
        let mut out = ParsedFile {
            tokens: lexed.tokens,
            ..ParsedFile::default()
        };
        for c in &lexed.comments {
            if let Some(d) = parse_allow(c.text.trim(), c.line) {
                out.allows.push(d);
            }
        }
        scan_items(&mut out);
        out
    }

    /// Whether token index `i` lies inside a test-only region.
    pub fn in_test_code(&self, i: usize) -> bool {
        self.test_regions.iter().any(|&(s, e)| s < i && i < e)
    }

    /// The innermost function whose body contains token index `i`.
    pub fn enclosing_fn(&self, i: usize) -> Option<&FnItem> {
        self.fns
            .iter()
            .filter(|f| f.body.is_some_and(|(s, e)| s < i && i < e))
            .min_by_key(|f| f.body.map(|(s, e)| e - s).unwrap_or(usize::MAX))
    }

    /// Whether some crate-level inner attribute is `level(… word …)` for one
    /// of the given lint levels — e.g. `parsed_attr_matches(&["forbid",
    /// "deny"], "unsafe_code")` accepts both `#![forbid(unsafe_code)]` and a
    /// combined `#![deny(unsafe_code, missing_docs)]`.
    pub fn parsed_attr_matches(&self, levels: &[&str], word: &str) -> bool {
        self.inner_attrs
            .iter()
            .any(|a| levels.iter().any(|lv| a.starts_with(&format!("{lv}("))) && has_word(a, word))
    }

    /// Whether an `allow(rule)` directive with a reason covers `line`
    /// (written on the finding's line or on the line directly above it).
    pub fn allowed(&self, rule: &str, line: u32) -> bool {
        self.allow_line(rule, line).is_some()
    }

    /// The line of the `allow(rule)` directive (with a reason) covering
    /// `line`, if any — so rules can record which directive they consumed.
    pub fn allow_line(&self, rule: &str, line: u32) -> Option<u32> {
        self.allows
            .iter()
            .find(|d| d.rule == rule && d.has_reason && (d.line == line || d.line + 1 == line))
            .map(|d| d.line)
    }

    /// Whether `line` falls inside a test-only region (by the line span of
    /// the region's brace tokens). Used for comment-borne directives, which
    /// have no token index of their own.
    pub fn line_in_test_code(&self, line: u32) -> bool {
        self.test_regions.iter().any(|&(s, e)| {
            let (Some(a), Some(b)) = (self.tokens.get(s), self.tokens.get(e)) else {
                return false;
            };
            a.line <= line && line <= b.line
        })
    }
}

/// Parses `lint: allow(RULE) reason` from a comment body.
fn parse_allow(text: &str, line: u32) -> Option<AllowDirective> {
    let rest = text.strip_prefix("lint:")?.trim_start();
    let rest = rest.strip_prefix("allow")?.trim_start();
    let rest = rest.strip_prefix('(')?;
    let close = rest.find(')')?;
    let rule = rest[..close].trim().to_string();
    let reason = rest[close + 1..].trim();
    Some(AllowDirective {
        rule,
        line,
        has_reason: !reason.is_empty(),
    })
}

fn ident_at(tokens: &[Token], i: usize) -> Option<&str> {
    match tokens.get(i).map(|t| &t.tok) {
        Some(Tok::Ident(s)) => Some(s.as_str()),
        _ => None,
    }
}

/// Renders the tokens of an attribute body as compact text, e.g.
/// `cfg(test)`, `derive(Debug,Clone)`.
fn attr_text(tokens: &[Token], start: usize, end: usize) -> String {
    let mut s = String::new();
    for t in &tokens[start..end] {
        match &t.tok {
            Tok::Ident(id) => {
                if s.ends_with(|c: char| c.is_alphanumeric() || c == '_') {
                    s.push(' ');
                }
                s.push_str(id);
            }
            Tok::Lifetime(l) => {
                s.push('\'');
                s.push_str(l);
            }
            Tok::Str(v) => {
                s.push('"');
                s.push_str(v);
                s.push('"');
            }
            Tok::Char => s.push_str("'_'"),
            Tok::Num => s.push('0'),
            Tok::Punct(c) => s.push(*c),
        }
    }
    s
}

/// Whether `word` appears in `text` with non-identifier characters (or the
/// string edges) on both sides.
fn has_word(text: &str, word: &str) -> bool {
    let mut from = 0;
    while let Some(at) = text[from..].find(word) {
        let start = from + at;
        let end = start + word.len();
        let before_ok = start == 0
            || !text[..start]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after_ok = end == text.len()
            || !text[end..]
                .chars()
                .next()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return true;
        }
        from = end;
    }
    false
}

/// Whether an outer attribute marks the following item as test-only.
fn is_test_attr(text: &str) -> bool {
    text == "test"
        || text.starts_with("test(")
        || (text.starts_with("cfg(") && has_word(text, "test"))
}

/// Walks the token stream once, recovering items, attributes, and scopes.
fn scan_items(out: &mut ParsedFile) {
    let tokens = &out.tokens;
    // Set when pending outer attributes mark the next braced item test-only.
    let mut pending_test = false;
    // A `fn` whose body `{` has not been seen yet.
    let mut open_fn: Option<usize> = None;
    // A `mod name` whose `{` has not been seen yet.
    let mut pending_mod: Option<String> = None;
    // An `impl` block's self type, awaiting its `{`.
    let mut pending_impl: Option<String> = None;
    // `()` / `[]` nesting, so `;` inside `[u8; 4]` is not an item end.
    let mut parens = 0usize;
    let mut brackets = 0usize;
    struct Scope {
        open_idx: usize,
        fn_idx: Option<usize>,
        test: bool,
        mod_name: Option<String>,
        impl_ty: Option<String>,
    }
    let mut scopes: Vec<Scope> = Vec::new();
    let mut fns: Vec<FnItem> = Vec::new();
    let mut test_regions: Vec<(usize, usize)> = Vec::new();
    let mut inner_attrs: Vec<String> = Vec::new();
    let mut uses: Vec<UseDecl> = Vec::new();

    let mut i = 0usize;
    while i < tokens.len() {
        match &tokens[i].tok {
            Tok::Punct('#') => {
                // Attribute: #[…] (outer) or #![…] (inner).
                let inner = matches!(tokens.get(i + 1).map(|t| &t.tok), Some(Tok::Punct('!')));
                let open = i + 1 + usize::from(inner);
                if matches!(tokens.get(open).map(|t| &t.tok), Some(Tok::Punct('['))) {
                    let mut j = open + 1;
                    let mut depth = 1usize;
                    while j < tokens.len() && depth > 0 {
                        match tokens[j].tok {
                            Tok::Punct('[') => depth += 1,
                            Tok::Punct(']') => depth -= 1,
                            _ => {}
                        }
                        j += 1;
                    }
                    let text = attr_text(tokens, open + 1, j.saturating_sub(1));
                    if inner {
                        if scopes.is_empty() {
                            inner_attrs.push(text);
                        }
                    } else if is_test_attr(&text) {
                        pending_test = true;
                    }
                    i = j;
                    continue;
                }
                i += 1;
            }
            Tok::Ident(kw) if kw == "fn" => {
                if let Some(name) = ident_at(tokens, i + 1) {
                    let module: Vec<String> =
                        scopes.iter().filter_map(|s| s.mod_name.clone()).collect();
                    let self_type = scopes.iter().rev().find_map(|s| s.impl_ty.clone());
                    fns.push(FnItem {
                        name: name.to_string(),
                        line: tokens[i].line,
                        is_pub: is_pub_before(tokens, i),
                        body: None,
                        module,
                        self_type,
                        ret_idents: ret_idents_after(tokens, i + 2),
                    });
                    open_fn = Some(fns.len() - 1);
                }
                // pending_test stays set until the body `{` or a `;`.
                i += 1;
            }
            Tok::Ident(kw) if kw == "mod" && open_fn.is_none() => {
                pending_mod = ident_at(tokens, i + 1).map(str::to_string);
                i += 1;
            }
            Tok::Ident(kw) if kw == "impl" && open_fn.is_none() => {
                // `impl` in a signature position (`-> impl Trait`, argument
                // `impl Trait`) is excluded by the `open_fn` guard; here it
                // starts an impl block (or, rarely, a `type T = impl …;`
                // alias, which the `;` arm cancels).
                pending_impl = impl_self_type(tokens, i);
                i += 1;
            }
            Tok::Ident(kw) if kw == "use" && parens == 0 && brackets == 0 => {
                // Flatten the whole use-tree via lookahead and skip past it,
                // so group braces never enter the scope stack.
                i = parse_use_decl(tokens, i + 1, &mut uses);
            }
            Tok::Punct('(') => {
                parens += 1;
                i += 1;
            }
            Tok::Punct(')') => {
                parens = parens.saturating_sub(1);
                i += 1;
            }
            Tok::Punct('[') => {
                brackets += 1;
                i += 1;
            }
            Tok::Punct(']') => {
                brackets = brackets.saturating_sub(1);
                i += 1;
            }
            Tok::Punct(';') if parens == 0 && brackets == 0 => {
                // Item/statement end before any body brace: a bodyless fn
                // declaration or `mod x;` — drop the pending markers.
                open_fn = None;
                pending_test = false;
                pending_mod = None;
                pending_impl = None;
                i += 1;
            }
            Tok::Punct('{') => {
                scopes.push(Scope {
                    open_idx: i,
                    fn_idx: open_fn.take(),
                    test: pending_test,
                    mod_name: pending_mod.take(),
                    impl_ty: pending_impl.take(),
                });
                pending_test = false;
                i += 1;
            }
            Tok::Punct('}') => {
                if let Some(s) = scopes.pop() {
                    if let Some(f) = s.fn_idx {
                        fns[f].body = Some((s.open_idx, i));
                    }
                    if s.test {
                        test_regions.push((s.open_idx, i));
                    }
                }
                i += 1;
            }
            _ => {
                i += 1;
            }
        }
    }

    out.fns = fns;
    out.test_regions = test_regions;
    out.inner_attrs = inner_attrs;
    out.uses = uses;
}

/// Recovers the self type of an `impl` header: the last identifier at
/// bracket-depth zero before the body `{` (restarting after `for`, stopping
/// at `where`) — `Tableau` for `impl<T> ops::Add<T> for Tableau<T> where …`.
fn impl_self_type(tokens: &[Token], impl_idx: usize) -> Option<String> {
    let mut ty: Option<String> = None;
    let mut angle = 0usize;
    let mut paren = 0usize;
    let mut j = impl_idx + 1;
    while j < tokens.len() {
        match &tokens[j].tok {
            Tok::Punct('{') | Tok::Punct(';') if angle == 0 && paren == 0 => break,
            Tok::Punct('<') => angle += 1,
            // `->` in a generic bound (`F: Fn() -> R`) is not a closer.
            Tok::Punct('>')
                if !matches!(tokens.get(j - 1).map(|t| &t.tok), Some(Tok::Punct('-'))) =>
            {
                angle = angle.saturating_sub(1);
            }
            Tok::Punct('(') => paren += 1,
            Tok::Punct(')') => paren = paren.saturating_sub(1),
            Tok::Ident(id) if angle == 0 && paren == 0 => {
                if id == "where" {
                    break;
                }
                if id == "for" {
                    ty = None;
                } else if !matches!(id.as_str(), "dyn" | "mut" | "const") {
                    ty = Some(id.clone());
                }
            }
            _ => {}
        }
        j += 1;
    }
    ty
}

/// Collects the identifiers of a fn's return type. `after_name` points just
/// past the fn name; the signature's generics and parameter list are skipped,
/// then everything between `->` and the body `{` (or `;` / `where`) is
/// scanned for identifiers.
fn ret_idents_after(tokens: &[Token], after_name: usize) -> Vec<String> {
    let mut j = after_name;
    // Skip `<…>` generics (guarding against `->` inside `Fn() -> R` bounds).
    if matches!(tokens.get(j).map(|t| &t.tok), Some(Tok::Punct('<'))) {
        let mut angle = 0usize;
        while j < tokens.len() {
            match &tokens[j].tok {
                Tok::Punct('<') => angle += 1,
                Tok::Punct('>')
                    if !matches!(tokens.get(j - 1).map(|t| &t.tok), Some(Tok::Punct('-'))) =>
                {
                    angle -= 1;
                    if angle == 0 {
                        j += 1;
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
    }
    // Skip the parameter list.
    if !matches!(tokens.get(j).map(|t| &t.tok), Some(Tok::Punct('('))) {
        return Vec::new();
    }
    let mut paren = 0usize;
    while j < tokens.len() {
        match &tokens[j].tok {
            Tok::Punct('(') => paren += 1,
            Tok::Punct(')') => {
                paren -= 1;
                if paren == 0 {
                    j += 1;
                    break;
                }
            }
            _ => {}
        }
        j += 1;
    }
    // Expect `->`; otherwise the fn returns unit.
    if !(matches!(tokens.get(j).map(|t| &t.tok), Some(Tok::Punct('-')))
        && matches!(tokens.get(j + 1).map(|t| &t.tok), Some(Tok::Punct('>'))))
    {
        return Vec::new();
    }
    j += 2;
    let mut out = Vec::new();
    while j < tokens.len() {
        match &tokens[j].tok {
            Tok::Punct('{') | Tok::Punct(';') => break,
            Tok::Ident(id) => {
                if id == "where" {
                    break;
                }
                out.push(id.clone());
            }
            _ => {}
        }
        j += 1;
    }
    out
}

/// Flattens one `use` declaration starting just past the `use` keyword into
/// `out`, returning the token index just past the terminating `;`.
fn parse_use_decl(tokens: &[Token], start: usize, out: &mut Vec<UseDecl>) -> usize {
    let end = parse_use_tree(tokens, start, &[], out);
    // Consume through the `;` (parse_use_tree stops at it or at EOF).
    let mut j = end;
    while j < tokens.len() {
        if matches!(tokens[j].tok, Tok::Punct(';')) {
            return j + 1;
        }
        j += 1;
    }
    j
}

/// Recursive-descent flattening of a use-tree (`a::b::{c, d as e, f::*}`).
/// Returns the index just past the tree (before any `,`/`}`/`;`).
fn parse_use_tree(
    tokens: &[Token],
    start: usize,
    prefix: &[String],
    out: &mut Vec<UseDecl>,
) -> usize {
    let mut segs: Vec<String> = prefix.to_vec();
    let mut j = start;
    while j < tokens.len() {
        match &tokens[j].tok {
            Tok::Ident(id) if id == "as" => {
                if let Some(alias) = ident_at(tokens, j + 1) {
                    out.push(UseDecl {
                        path: segs,
                        alias: alias.to_string(),
                    });
                    return j + 2;
                }
                return j + 1;
            }
            Tok::Ident(id) => {
                segs.push(id.clone());
                j += 1;
            }
            Tok::Punct(':') => {
                j += 1; // both colons of `::` arrive as single puncts
            }
            Tok::Punct('*') => {
                out.push(UseDecl {
                    path: segs,
                    alias: "*".to_string(),
                });
                return j + 1;
            }
            Tok::Punct('{') => {
                j += 1;
                while j < tokens.len() {
                    match &tokens[j].tok {
                        Tok::Punct('}') => return j + 1,
                        Tok::Punct(',') => j += 1,
                        _ => {
                            let next = parse_use_tree(tokens, j, &segs, out);
                            // Guarantee progress on malformed input.
                            j = next.max(j + 1);
                        }
                    }
                }
                return j;
            }
            _ => {
                // `;`, `,`, `}` or anything unexpected ends this tree.
                if segs.len() > prefix.len() {
                    let alias = segs.last().cloned().unwrap_or_default();
                    out.push(UseDecl { path: segs, alias });
                }
                return j;
            }
        }
    }
    if segs.len() > prefix.len() {
        let alias = segs.last().cloned().unwrap_or_default();
        out.push(UseDecl { path: segs, alias });
    }
    j
}

/// Whether a `pub` marker directly precedes the item keyword at `i`
/// (skipping over a `(crate)` / `(super)` visibility scope and qualifiers
/// like `const`, `async`, `unsafe`, `extern "C"`).
fn is_pub_before(tokens: &[Token], i: usize) -> bool {
    let mut j = i;
    while j > 0 {
        j -= 1;
        match &tokens[j].tok {
            Tok::Ident(s) if s == "const" || s == "async" || s == "unsafe" || s == "extern" => {
                continue;
            }
            Tok::Str(_) => continue, // the ABI string of `extern "C"`
            Tok::Punct(')') => {
                // Possible visibility scope `(crate)` — walk to its `(`.
                while j > 0 && !matches!(tokens[j].tok, Tok::Punct('(')) {
                    j -= 1;
                }
                continue;
            }
            Tok::Ident(s) if s == "pub" => return true,
            _ => return false,
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_pub_fns_and_bodies() {
        let p = ParsedFile::parse(
            "pub fn a() { inner(); }\nfn b() {}\npub(crate) fn c() -> usize { 1 }\n",
        );
        let names: Vec<_> = p.fns.iter().map(|f| (f.name.as_str(), f.is_pub)).collect();
        assert_eq!(names, [("a", true), ("b", false), ("c", true)]);
        assert!(p.fns.iter().all(|f| f.body.is_some()));
    }

    #[test]
    fn cfg_test_mod_is_a_test_region() {
        let p = ParsedFile::parse(
            "fn prod() { x(); }\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { y(); }\n}\n",
        );
        assert_eq!(p.test_regions.len(), 2); // the mod and the #[test] fn
        let y_idx = p
            .tokens
            .iter()
            .position(|t| matches!(&t.tok, Tok::Ident(s) if s == "y"))
            .unwrap();
        let x_idx = p
            .tokens
            .iter()
            .position(|t| matches!(&t.tok, Tok::Ident(s) if s == "x"))
            .unwrap();
        assert!(p.in_test_code(y_idx));
        assert!(!p.in_test_code(x_idx));
    }

    #[test]
    fn inner_attrs_only_at_crate_level() {
        let p = ParsedFile::parse(
            "#![forbid(unsafe_code)]\n#![warn(missing_docs)]\nmod m {\n    #![allow(dead_code)]\n}\n",
        );
        assert_eq!(p.inner_attrs, ["forbid(unsafe_code)", "warn(missing_docs)"]);
    }

    #[test]
    fn allow_directives_need_reasons() {
        let p = ParsedFile::parse(
            "// lint: allow(L002) panics are the feature under test\nfn a() {}\n// lint: allow(L003)\nfn b() {}\n",
        );
        assert_eq!(p.allows.len(), 2);
        assert!(p.allowed("L002", 1));
        assert!(p.allowed("L002", 2)); // line-above form
        assert!(!p.allowed("L003", 4)); // no reason given
    }

    #[test]
    fn enclosing_fn_is_innermost() {
        let p = ParsedFile::parse("fn outer() { fn inner() { probe(); } }");
        let probe = p
            .tokens
            .iter()
            .position(|t| matches!(&t.tok, Tok::Ident(s) if s == "probe"))
            .unwrap();
        assert_eq!(p.enclosing_fn(probe).unwrap().name, "inner");
    }

    #[test]
    fn fns_carry_module_path_and_impl_self_type() {
        let p = ParsedFile::parse(
            "mod outer { mod inner { fn deep() {} }\n\
             struct S;\n\
             impl S { fn m(&self) {} }\n\
             impl std::fmt::Display for S { fn fmt(&self) {} } }\n\
             impl<T: Clone> Grid<T> where T: Copy { fn cell(&self) {} }\n",
        );
        let by_name = |n: &str| p.fns.iter().find(|f| f.name == n).unwrap();
        assert_eq!(by_name("deep").module, ["outer", "inner"]);
        assert_eq!(by_name("m").module, ["outer"]);
        assert_eq!(by_name("m").self_type.as_deref(), Some("S"));
        assert_eq!(by_name("fmt").self_type.as_deref(), Some("S"));
        assert_eq!(by_name("cell").self_type.as_deref(), Some("Grid"));
        assert_eq!(by_name("deep").self_type, None);
    }

    #[test]
    fn impl_trait_in_signature_is_not_an_impl_block() {
        let p = ParsedFile::parse(
            "fn iter(xs: impl IntoIterator<Item = u8>) -> impl Iterator<Item = u8> { xs.into_iter() }\n\
             fn after() {}\n",
        );
        assert_eq!(p.fns.len(), 2);
        assert_eq!(p.fns[1].self_type, None);
        assert!(p.fns[0].ret_idents.iter().any(|s| s == "Iterator"));
    }

    #[test]
    fn return_type_idents_capture_guard_types() {
        let p = ParsedFile::parse(
            "fn wlock(&self, i: usize) -> RwLockWriteGuard<'_, Engine> { self.shards[i].write() }\n\
             fn plain(x: (u8, u8)) -> Result<Vec<String>, Error> { Ok(vec![]) }\n\
             fn unit() {}\n\
             fn generic<F: Fn() -> usize>(f: F) -> usize { f() }\n",
        );
        assert!(p.fns[0].ret_idents.iter().any(|s| s == "RwLockWriteGuard"));
        assert_eq!(p.fns[1].ret_idents, ["Result", "Vec", "String", "Error"]);
        assert!(p.fns[2].ret_idents.is_empty());
        assert_eq!(p.fns[3].ret_idents, ["usize"]);
    }

    #[test]
    fn use_trees_flatten_with_groups_renames_and_globs() {
        let p = ParsedFile::parse(
            "use std::collections::HashMap;\n\
             use crate::engine::{Engine, shared::SharedEngine as Shared, store::*};\n\
             pub use projtile_lp::solve;\n\
             fn f() {}\n",
        );
        let find = |alias: &str| p.uses.iter().find(|u| u.alias == alias).unwrap();
        assert_eq!(find("HashMap").path, ["std", "collections", "HashMap"]);
        assert_eq!(find("Engine").path, ["crate", "engine", "Engine"]);
        assert_eq!(
            find("Shared").path,
            ["crate", "engine", "shared", "SharedEngine"]
        );
        assert_eq!(find("*").path, ["crate", "engine", "store"]);
        assert_eq!(find("solve").path, ["projtile_lp", "solve"]);
        // Use-group braces never corrupt fn/scope recovery.
        assert_eq!(p.fns.len(), 1);
        assert!(p.fns[0].body.is_some());
    }
}
