//! Findings, baselines, and machine-readable output.
//!
//! A finding's identity for baseline purposes is `(rule, path, detail)` —
//! deliberately *not* the line number, so unrelated edits above a baselined
//! finding do not un-suppress it. `detail` is rule-specific but stable: the
//! enclosing function and forbidden token for the panic-surface rule, the
//! function name for oracle coverage, the variable name for the env
//! registry, and so on.

use std::fmt;

/// One rule violation.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Rule id, e.g. `L002`.
    pub rule: String,
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// 1-based line (0 when the finding is about a whole file).
    pub line: u32,
    /// Stable identity component, e.g. `handle_request::panic!`.
    pub detail: String,
    /// Human-readable explanation.
    pub message: String,
    /// For reachability rules (L008/L009): the call chain from the analyzed
    /// surface down to the sink, as `qualified_fn @ path:line` steps.
    /// Empty for token-local rules.
    pub chain: Vec<String>,
}

impl Finding {
    /// Creates a finding.
    pub fn new(
        rule: &str,
        path: &str,
        line: u32,
        detail: impl Into<String>,
        message: impl Into<String>,
    ) -> Finding {
        Finding {
            rule: rule.to_string(),
            path: path.to_string(),
            line,
            detail: detail.into(),
            message: message.into(),
            chain: Vec::new(),
        }
    }

    /// Attaches a call chain (reachability rules).
    pub fn with_chain(mut self, chain: Vec<String>) -> Finding {
        self.chain = chain;
        self
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {} (key: {})",
            self.path, self.line, self.rule, self.message, self.detail
        )
    }
}

/// A parsed baseline: the set of `(rule, path, detail)` triples that are
/// known, justified, and therefore not gating.
#[derive(Debug, Default)]
pub struct Baseline {
    entries: Vec<(String, String, String)>,
}

impl Baseline {
    /// Parses baseline text. Each non-comment line is
    /// `RULE PATH DETAIL` (whitespace-separated; `DETAIL` may itself not
    /// contain whitespace — none of the generated details do). Lines starting
    /// with `#` and blank lines are ignored. Returns `Err` with a message
    /// naming the first malformed line.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let mut entries = Vec::new();
        for (n, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            match (parts.next(), parts.next(), parts.next()) {
                (Some(rule), Some(path), Some(detail)) => {
                    entries.push((rule.to_string(), path.to_string(), detail.to_string()));
                }
                _ => {
                    return Err(format!(
                        "baseline line {}: expected `RULE PATH DETAIL`, got `{raw}`",
                        n + 1
                    ));
                }
            }
        }
        Ok(Baseline { entries })
    }

    /// Whether `f` is suppressed by this baseline.
    pub fn contains(&self, f: &Finding) -> bool {
        self.entries
            .iter()
            .any(|(r, p, d)| *r == f.rule && *p == f.path && *d == f.detail)
    }

    /// Renders findings in baseline format (for `--write-baseline`).
    pub fn render(findings: &[Finding]) -> String {
        let mut out = String::from(
            "# projtile-lint baseline: known, justified findings (RULE PATH DETAIL).\n\
             # Regenerate with `projtile-lint --write-baseline <path>`; prefer fixing\n\
             # or `// lint: allow(RULE) reason` at the site over growing this file.\n",
        );
        for f in findings {
            out.push_str(&format!("{} {} {}\n", f.rule, f.path, f.detail));
        }
        out
    }
}

/// Escapes a string for JSON output.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders findings as a JSON array (sorted, machine-readable, one object
/// per finding with `rule`/`path`/`line`/`detail`/`message`/`baselined`,
/// plus `chain` for reachability findings that carry a call chain).
pub fn to_json(findings: &[(Finding, bool)]) -> String {
    let mut out = String::from("[");
    for (i, (f, baselined)) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let chain = if f.chain.is_empty() {
            String::new()
        } else {
            let steps: Vec<String> = f
                .chain
                .iter()
                .map(|s| format!("\"{}\"", json_escape(s)))
                .collect();
            format!(", \"chain\": [{}]", steps.join(", "))
        };
        out.push_str(&format!(
            "\n  {{\"rule\": \"{}\", \"path\": \"{}\", \"line\": {}, \"detail\": \"{}\", \"message\": \"{}\", \"baselined\": {}{}}}",
            json_escape(&f.rule),
            json_escape(&f.path),
            f.line,
            json_escape(&f.detail),
            json_escape(&f.message),
            baselined,
            chain
        ));
    }
    if !findings.is_empty() {
        out.push('\n');
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_roundtrip_and_matching() {
        let f = Finding::new("L002", "crates/x/src/a.rs", 10, "f::panic!", "no panics");
        let text = Baseline::render(std::slice::from_ref(&f));
        let b = Baseline::parse(&text).unwrap();
        assert!(b.contains(&f));
        let mut moved = f.clone();
        moved.line = 99; // line changes do not un-suppress
        assert!(b.contains(&moved));
        let mut other = f.clone();
        other.detail = "g::panic!".into();
        assert!(!b.contains(&other));
    }

    #[test]
    fn malformed_baseline_is_rejected() {
        assert!(Baseline::parse("L002 only-two").is_err());
        assert!(Baseline::parse("# comment\n\n").is_ok());
    }

    #[test]
    fn json_escapes_specials() {
        let f = Finding::new("L006", "a.rs", 1, "X", "quote \" and \\ and\nnewline");
        let json = to_json(&[(f, false)]);
        assert!(json.contains(r#"quote \" and \\ and\nnewline"#));
    }
}
