//! Workspace file discovery.
//!
//! Walks the workspace from its root, collecting the Rust sources the rules
//! inspect, plus the non-Rust inputs two rules need (`scripts/ci.sh`,
//! `docs/operations.md`). Directories named `target`, `fixtures`, or `.git`
//! are never descended into: `target` is build output, and `fixtures` holds
//! this crate's own deliberately-violating test inputs, which must not turn
//! into findings on the real workspace.

use std::fs;
use std::path::{Path, PathBuf};

use crate::parser::ParsedFile;

/// One discovered Rust source file, parsed.
pub struct Source {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// Parsed token-level view.
    pub parsed: ParsedFile,
}

impl Source {
    /// Whether this file lives under `dir` (a workspace-relative prefix).
    pub fn under(&self, dir: &str) -> bool {
        self.path.starts_with(dir)
            && matches!(self.path.as_bytes().get(dir.len()), None | Some(b'/'))
    }

    /// Whether this is a test source: under some `tests/` directory.
    pub fn is_test_file(&self) -> bool {
        self.path.split('/').any(|seg| seg == "tests")
    }
}

/// Everything the rules look at, loaded once.
pub struct Workspace {
    /// Workspace root.
    pub root: PathBuf,
    /// All parsed Rust sources, sorted by path.
    pub sources: Vec<Source>,
    /// Contents of `scripts/ci.sh`, if present.
    pub ci_script: Option<String>,
    /// Contents of the env-var registry document, if present.
    pub env_registry: Option<String>,
}

/// Directory names that are never descended into.
const SKIP_DIRS: [&str; 4] = ["target", "fixtures", ".git", "node_modules"];

impl Workspace {
    /// Loads the workspace rooted at `root`. `env_registry_path` is the
    /// workspace-relative document the env-registry rule checks against
    /// (normally `docs/operations.md`).
    pub fn load(root: &Path, env_registry_path: &str) -> Result<Workspace, String> {
        if !root.join("Cargo.toml").is_file() {
            return Err(format!(
                "{} does not look like a workspace root (no Cargo.toml)",
                root.display()
            ));
        }
        let mut files: Vec<PathBuf> = Vec::new();
        collect_rs(root, &mut files)?;
        files.sort();
        let mut sources = Vec::with_capacity(files.len());
        for f in &files {
            let text = fs::read_to_string(f)
                .map_err(|e| format!("failed to read {}: {e}", f.display()))?;
            sources.push(Source {
                path: rel_path(root, f),
                parsed: ParsedFile::parse(&text),
            });
        }
        let ci_script = fs::read_to_string(root.join("scripts/ci.sh")).ok();
        let env_registry = fs::read_to_string(root.join(env_registry_path)).ok();
        Ok(Workspace {
            root: root.to_path_buf(),
            sources,
            ci_script,
            env_registry,
        })
    }

    /// The sources under any of `dirs` (workspace-relative prefixes).
    pub fn sources_under<'a>(&'a self, dirs: &'a [String]) -> impl Iterator<Item = &'a Source> {
        self.sources
            .iter()
            .filter(move |s| dirs.iter().any(|d| s.under(d)))
    }
}

fn rel_path(root: &Path, f: &Path) -> String {
    f.strip_prefix(root)
        .unwrap_or(f)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries =
        fs::read_dir(dir).map_err(|e| format!("failed to list {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("failed to list {}: {e}", dir.display()))?;
        let path = entry.path();
        let name = entry.file_name().to_string_lossy().into_owned();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_str()) {
                continue;
            }
            collect_rs(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}
