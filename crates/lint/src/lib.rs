//! `projtile-lint` — workspace static analysis that machine-checks the
//! repo's correctness conventions.
//!
//! The reproduction's soundness story (the paper's Theorems 2/3 served
//! bitwise-exactly at scale) rests on conventions no compiler enforces:
//! every warm path keeps a `_cold` differential oracle and is tested against
//! it; the service request path never unwinds except through `catch_unwind`;
//! [`SharedEngine`] never computes under a shard write lock; every crate
//! forbids `unsafe`; every `PROJTILE_*` knob is in the runbook; the CI
//! smoke-greps track real workload names. This crate turns those review-time
//! conventions into a CI gate.
//!
//! # Architecture
//!
//! * [`lexer`] — a real (if lossy) Rust lexer: raw/byte strings with hash
//!   fences, nested block comments, lifetimes vs. char literals. Rules see
//!   tokens, so `panic!` inside a string or comment can never be a finding.
//! * [`parser`] — item-level structure in the no-`syn` style of
//!   `shims/serde_derive`: brace scopes, attributes, `fn` bodies,
//!   `#[cfg(test)]` regions, and `// lint: allow(RULE) reason` directives.
//! * [`graph`] — the whole-workspace interprocedural call graph: a symbol
//!   table of free fns and inherent methods (test code contributes no
//!   nodes), module-path- and `use`-aware resolution, conservative
//!   over-approximation for untyped method dispatch, and SCC-condensed
//!   reachability so recursion in the kernels cannot hang a rule.
//! * [`rules`] — the catalog: token-level rules (L001 oracle-coverage,
//!   L002 no-panic surface, L003 lock discipline, L004 crate hygiene,
//!   L006 env-var registry, L007 smoke-grep rot) and graph-backed rules
//!   (L008 transitive no-panic, L009 lock reachability, L010 allow-debt)
//!   over a declarative [`rules::Config`].
//! * [`findings`] — stable finding identities, call chains, the checked-in
//!   baseline format, and machine-readable JSON output.
//! * [`workspace`] — file discovery (skipping `target/` and test fixtures).
//!
//! The `projtile-lint` binary runs the catalog over the workspace, exits
//! nonzero on any finding not suppressed by the baseline, and is wired into
//! `scripts/ci.sh` as a gating stage. The full rule catalog with rationale
//! and examples is documented in `docs/lints.md` (also served by
//! `projtile-lint --explain RULE`).
//!
//! [`SharedEngine`]: ../projtile_core/engine/struct.SharedEngine.html

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod findings;
pub mod graph;
pub mod lexer;
pub mod parser;
pub mod rules;
pub mod workspace;

use std::path::Path;

pub use findings::{Baseline, Finding};
pub use rules::Config;
pub use workspace::Workspace;

/// Loads the workspace at `root` and runs the whole rule catalog under
/// `config`, returning findings sorted by `(path, line, rule)`.
pub fn run_lint(root: &Path, config: &Config) -> Result<Vec<Finding>, String> {
    let ws = Workspace::load(root, &config.env_registry_path)?;
    Ok(rules::run_all(&ws, config))
}
