//! End-to-end integration tests spanning every crate in the workspace:
//! loop-nest construction → lower bounds → tiling → schedule → cache
//! simulation, checked against the paper's claims.

use projtile::arith::{ratio, Rational};
use projtile::core::{
    check_tightness, closed_forms, communication_lower_bound, hbl, optimal_tiling, ProblemInstance,
};
use projtile::exec::{compare_schedules, measure, CachePolicy, Schedule};
use projtile::loopnest::builders;

#[test]
fn matmul_pipeline_large_bounds() {
    // §6.1, all bounds large: exponent 3/2, square tile, measured traffic of
    // the tiled schedule within a small constant of the lower bound.
    let m = 1u64 << 10;
    let nest = builders::matmul(1 << 6, 1 << 6, 1 << 6);
    let inst = ProblemInstance::new(nest.clone(), m);

    assert_eq!(inst.hbl_exponent(), ratio(3, 2));
    assert!(inst.check_tightness().tight);

    let tiling = inst.optimal_tiling();
    assert_eq!(tiling.tile_dims(), &[32, 32, 32]);

    let lb = inst.communication_lower_bound();
    let expected = (1u64 << 18) as f64 / 32.0;
    assert!((lb - expected).abs() / expected < 1e-9);

    let cmp = compare_schedules(&nest, m, CachePolicy::Lru);
    assert!(cmp.optimal().ratio_to_lower_bound < 6.0);
    assert!(cmp.untiled().ratio_to_lower_bound > cmp.optimal().ratio_to_lower_bound);
}

#[test]
fn matvec_pipeline_small_bound_regime() {
    // §6.1, L3 = 1: the lower bound is the matrix size and the measured
    // traffic of every schedule is at least that.
    let m = 1u64 << 10;
    let l = 1u64 << 7;
    let nest = builders::matvec(l, l);

    let bound = communication_lower_bound(&nest, m);
    assert_eq!(bound.exponent, Rational::one());
    assert!((bound.words - (l * l) as f64).abs() < 1e-6);

    // The classical analysis would claim l*l/sqrt(M), which is unachievable.
    let classical = hbl::large_bound_lower_bound(&nest, m);
    assert!(classical < bound.words);

    let measured = measure(&nest, &Schedule::untiled(&nest), m, CachePolicy::Lru);
    assert!(measured.words_transferred() >= (l * l));

    assert!(check_tightness(&nest, m).tight);
}

#[test]
fn every_builder_kernel_is_tight_across_cache_sizes() {
    // Theorem 3 end-to-end on every kernel the paper mentions, across several
    // cache sizes (powers of two so the exponents are exact rationals).
    for m in [4u64, 64, 1 << 10, 1 << 16] {
        let nests = vec![
            builders::matmul(1 << 7, 1 << 5, 1 << 2),
            builders::matvec(1 << 6, 1 << 9),
            builders::pointwise_conv(2, 4, 1 << 6, 1 << 4, 1 << 4),
            builders::fully_connected(1 << 5, 1 << 3, 1 << 7),
            builders::nbody(1 << 3, 1 << 9),
            builders::tensor_contraction(1, 3, &[1 << 4, 1 << 2, 1 << 6]),
            builders::tensor_contraction(2, 4, &[4, 8, 2, 16, 32]),
        ];
        for nest in nests {
            let report = check_tightness(&nest, m);
            assert!(report.tight, "M={m}, nest={nest}: {report:?}");
        }
    }
}

#[test]
fn lower_bound_is_never_violated_by_any_simulated_schedule() {
    // Soundness of Theorem 2 against the machine model: no schedule and no
    // replacement policy (including the offline-optimal one) moves fewer words
    // than (lower bound / #arrays); the division accounts for the fact that
    // the paper's bound counts per-tile refills of M words while the simulator
    // counts individual misses.
    let m = 64u64;
    for nest in [
        builders::matmul(12, 12, 12),
        builders::matmul(16, 16, 2),
        builders::nbody(16, 48),
        builders::pointwise_conv(2, 2, 8, 6, 6),
    ] {
        let lb = communication_lower_bound(&nest, m).words;
        let floor = lb / nest.num_arrays() as f64;
        for policy in [CachePolicy::Lru, CachePolicy::Ideal] {
            for schedule in [
                Schedule::untiled(&nest),
                Schedule::from_tiling(&optimal_tiling(&nest, m)),
            ] {
                let measured = measure(&nest, &schedule, m, policy);
                assert!(
                    measured.words_transferred() as f64 >= floor * 0.99,
                    "{nest} / {policy:?} / {}: {} < {floor}",
                    schedule.label(),
                    measured.words_transferred()
                );
            }
        }
    }
}

#[test]
fn closed_forms_match_general_machinery_end_to_end() {
    let m = 1u64 << 8;
    for (l1, l2, l3) in [
        (1u64 << 6, 1u64 << 6, 1u64 << 6),
        (1 << 6, 1 << 6, 2),
        (4, 4, 4),
    ] {
        let nest = builders::matmul(l1, l2, l3);
        let bound = communication_lower_bound(&nest, m);
        assert_eq!(bound.exponent, closed_forms::matmul_exponent(l1, l2, l3, m));
        let closed = closed_forms::matmul_lower_bound_words(l1, l2, l3, m);
        assert!((bound.words - closed).abs() / closed < 1e-9);
    }
    for (l1, l2) in [(1u64 << 9, 1u64 << 9), (1 << 3, 1 << 9), (4, 4)] {
        let nest = builders::nbody(l1, l2);
        let bound = communication_lower_bound(&nest, m);
        assert_eq!(bound.exponent, closed_forms::nbody_exponent(l1, l2, m));
    }
}

#[test]
fn growing_the_cache_never_hurts() {
    // Larger fast memory: lower bound shrinks (or stays), optimal tile grows
    // (or stays), measured traffic of the optimal schedule shrinks (or stays).
    let nest = builders::matmul(32, 32, 32);
    let mut prev_lb = f64::INFINITY;
    let mut prev_measured = u64::MAX;
    for m in [32u64, 64, 128, 256, 512, 1024] {
        let lb = communication_lower_bound(&nest, m).words;
        assert!(lb <= prev_lb * (1.0 + 1e-12), "lower bound grew at M={m}");
        prev_lb = lb;

        let (_, schedule) = projtile::exec::optimal_tiling_schedule(&nest, m);
        let measured = measure(&nest, &schedule, m, CachePolicy::Lru).words_transferred();
        assert!(measured <= prev_measured, "measured traffic grew at M={m}");
        prev_measured = measured;
    }
}

#[test]
fn alpha_family_members_all_attain_the_bound() {
    let m = 1u64 << 10;
    let nest = builders::matmul(1 << 7, 1 << 7, 1 << 2);
    let family = projtile::core::alpha::optimal_family(&nest, m, 0);
    let lb = communication_lower_bound(&nest, m).words;
    for num in 0..=4i64 {
        let alpha = ratio(num, 4);
        let tiling = family.tiling_at(&nest, m, &alpha);
        let model = tiling.communication_model();
        assert!(
            model.ratio_to_lower_bound < 4.0,
            "alpha={alpha}: ratio {} (lb {lb})",
            model.ratio_to_lower_bound
        );
    }
}
