//! Property-based integration tests of the paper's theorems over random
//! projective programs and random power-of-two problem sizes.

use projtile::arith::Rational;
use projtile::core::{
    bounds, check_tightness, communication_lower_bound, hbl, optimal_tiling, solve_tiling_lp,
};
use projtile::loopnest::{builders, IndexSet};
use proptest::prelude::*;

/// Strategy: a random projective program (via the deterministic generator in
/// `builders`) with power-of-two bounds, plus a power-of-two cache size.
fn random_instance() -> impl Strategy<Value = (projtile::loopnest::LoopNest, u64)> {
    (
        any::<u64>(),
        2usize..=5,
        2usize..=5,
        proptest::collection::vec(0u32..=9, 5),
        3u32..=12,
    )
        .prop_map(|(seed, d, n, exps, log_m)| {
            // Build with the generator, then overwrite bounds with powers of
            // two so every β is an exact rational.
            let nest = builders::random_projective(seed, d, n, (1, 4));
            let bounds: Vec<u64> = (0..d).map(|i| 1u64 << exps[i]).collect();
            (nest.with_bounds(&bounds), 1u64 << log_m)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn theorem_3_tightness_holds((nest, m) in random_instance()) {
        let report = check_tightness(&nest, m);
        prop_assert!(report.tight, "{nest} M={m}: {report:?}");
        // The enumerated bound is sandwiched between k̂ and k_HBL.
        prop_assert!(report.enumerated_exponent >= report.bound_exponent);
        prop_assert!(report.enumerated_exponent <= hbl::hbl_exponent(&nest));
    }

    #[test]
    fn arbitrary_bound_dominates_classical_and_trivial((nest, m) in random_instance()) {
        let lb = communication_lower_bound(&nest, m);
        // Never weaker than the classical bound.
        let classical = hbl::large_bound_lower_bound(&nest, m);
        prop_assert!(lb.words >= classical * (1.0 - 1e-9));
        // The exponent never exceeds min(k_HBL, Σβ).
        let beta_sum: Rational = bounds::betas(&nest, m)
            .into_iter()
            .fold(Rational::zero(), |acc, b| &acc + &b);
        prop_assert!(lb.exponent <= hbl::hbl_exponent(&nest));
        prop_assert!(lb.exponent <= beta_sum);
        // Tile-size bound is at least one point and at most the whole space.
        prop_assert!(lb.tile_size_bound >= 1.0 - 1e-9);
        prop_assert!(lb.tile_size_bound <= nest.iteration_space_size() as f64 * (1.0 + 1e-9));
    }

    #[test]
    fn optimal_tiling_is_feasible_and_attains_the_exponent((nest, m) in random_instance()) {
        let sol = solve_tiling_lp(&nest, m);
        let tiling = optimal_tiling(&nest, m);
        // Integer tile dims stay inside the bounds and within the footprint
        // allowance of one M per array.
        for (b, l) in tiling.tile_dims().iter().zip(nest.bounds()) {
            prop_assert!(*b >= 1 && *b <= l);
        }
        for j in 0..nest.num_arrays() {
            prop_assert!(nest.array_footprint(j, tiling.tile_dims()) <= m as u128);
        }
        // The tile volume equals M^{Σλ} up to integer rounding: it is bounded
        // above by the exact bound and below by (M / 2^d)^{Σλ}-ish; we check
        // the sound direction (never exceeds the Theorem-2 bound).
        let bound = bounds::arbitrary_bound_exponent(&nest, m);
        let tile_volume = tiling.tile_volume() as f64;
        prop_assert!(tile_volume <= bound.tile_size_bound * (1.0 + 1e-9));
        prop_assert_eq!(sol.value.clone(), bound.exponent);
    }

    #[test]
    fn theorem_2_formula_upper_bounds_every_subset((nest, m) in random_instance()) {
        // Every subset's enumerated exponent is a valid upper bound: it
        // dominates the strongest bound, and removing rows never increases
        // the row-deleted HBL optimum.
        let best = bounds::arbitrary_bound_exponent(&nest, m);
        let d = nest.num_loops();
        for q in IndexSet::all_subsets(d) {
            let k_q = bounds::exponent_for_subset(&nest, m, q);
            prop_assert!(k_q >= best.exponent, "Q={q:?}");
        }
    }

    #[test]
    fn monotone_in_every_loop_bound((nest, m) in random_instance()) {
        // Doubling any single loop bound never decreases the lower bound.
        let base = communication_lower_bound(&nest, m).words;
        for axis in 0..nest.num_loops() {
            let mut bigger = nest.bounds();
            bigger[axis] *= 2;
            let grown = communication_lower_bound(&nest.with_bounds(&bigger), m).words;
            prop_assert!(grown >= base * (1.0 - 1e-9), "axis {axis}");
        }
    }
}

#[test]
fn tiny_cache_and_unit_bounds_edge_cases() {
    // Degenerate but legal instances must not panic and must keep exponents
    // within range.
    let nest = builders::matmul(1, 1, 1);
    for m in [2u64, 3, 4] {
        let report = check_tightness(&nest, m);
        assert!(report.tight);
        assert_eq!(report.tiling_exponent, Rational::zero());
    }
    let nest = builders::nbody(1, 1 << 12);
    let report = check_tightness(&nest, 2);
    assert!(report.tight);
}
