//! `projtile` — communication-optimal tilings for projective nested loops
//! with arbitrary bounds.
//!
//! This is the facade crate of the workspace reproducing Dinh & Demmel,
//! *"Communication-Optimal Tilings for Projective Nested Loops with Arbitrary
//! Bounds"* (SPAA 2020). It re-exports the sub-crates under stable paths so
//! applications only need a single dependency:
//!
//! * [`arith`] — exact big-integer / rational arithmetic;
//! * [`lp`] — the exact rational simplex solver, duality, and parametric LP;
//! * [`loopnest`] — the projective loop-nest IR and the paper's kernels;
//! * [`cachesim`] — LRU / ideal / set-associative word-granularity caches;
//! * [`core`] — lower bounds (Theorem 2), optimal tilings (LP 5.1), tightness
//!   (Theorem 3), closed forms (§6), parametric analysis (§7), and the
//!   [`core::engine`] session API (canonical nest interning, cross-query
//!   artifact reuse, batched typed queries) for repeated-query traffic;
//! * [`exec`] — schedules, trace generation, and measured communication;
//! * [`par`] — small crossbeam-based data-parallel helpers;
//! * [`service`] — the hardened TCP front end (deadlines, backpressure,
//!   panic isolation, crash-safe snapshot lifecycle, fault injection) and
//!   its retrying client;
//! * [`lab`] — the trace-driven cache policy lab: record live query traces,
//!   replay them through candidate memo policies (exact-LRU differential,
//!   TTL, cost-aware admission, 2Q), and generate deterministic service
//!   load.
//!
//! # Quick start
//!
//! ```
//! use projtile::loopnest::builders;
//! use projtile::core::ProblemInstance;
//!
//! // A 512 x 512 x 4 matrix multiplication analysed against a 1024-word cache.
//! let nest = builders::matmul(512, 512, 4);
//! let instance = ProblemInstance::new(nest, 1024);
//!
//! // Theorem 2: the communication lower bound in words.
//! let words = instance.communication_lower_bound();
//! assert!(words >= 512.0 * 512.0); // at least the size of the big matrix
//!
//! // LP (5.1): an optimal rectangular tile that attains it.
//! let tiling = instance.optimal_tiling();
//! assert_eq!(tiling.tile_dims().len(), 3);
//!
//! // Theorem 3: tightness, checked exactly. The instance is backed by an
//! // engine session, so this reuses the artifacts of the calls above.
//! assert!(instance.check_tightness().tight);
//! ```
//!
//! For repeated-query traffic (a compiler pass, a JIT, a service), hold a
//! [`core::engine::Engine`] directly and feed it typed
//! [`core::engine::Query`] values — one at a time or as a batch:
//!
//! ```
//! use projtile::core::engine::{AnalysisResult, Engine, Query};
//! use projtile::loopnest::builders;
//!
//! let mut engine = Engine::new();
//! let nest = builders::matmul(512, 512, 4);
//! let answers = engine.analyze_batch(
//!     &nest,
//!     &[
//!         Query::LowerBound { cache_size: 1024 },
//!         Query::Tightness { cache_size: 1024 },
//!     ],
//! );
//! assert!(matches!(
//!     answers[0],
//!     Ok(AnalysisResult::LowerBound(_))
//! ));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use projtile_arith as arith;
pub use projtile_cachesim as cachesim;
pub use projtile_core as core;
pub use projtile_exec as exec;
pub use projtile_lab as lab;
pub use projtile_loopnest as loopnest;
pub use projtile_lp as lp;
pub use projtile_par as par;
pub use projtile_service as service;

/// The version of the workspace.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");

#[cfg(test)]
mod tests {
    #[test]
    fn version_is_nonempty() {
        assert!(!super::VERSION.is_empty());
    }
}
