//! The multiparametric §7 analysis: the optimal tile exponent as an exact
//! piecewise-linear function of *all* the log loop bounds at once.
//!
//! Run with `cargo run --example exponent_surface`.
//!
//! The §6.1 matmul case analysis — `min(3/2, 1 + min(β1, β2, β3),
//! β1 + β2 + β3)` — is derived by hand in the paper. Here the multiparametric
//! LP solver re-derives it mechanically: it decomposes the value surface of
//! the tiling LP (5.1) over the box `β ∈ [0, 1]³` into critical regions, one
//! affine piece per optimal basis, each valid on an exactly-described
//! rational polyhedron, and checks Theorem 3 in every region. The surface is
//! requested through an [`Engine`] session, which memoizes it keyed by
//! `(axes, box)` — the second request at the end is a pure cache hit.

use projtile::core::engine::Engine;
use projtile::core::tightness::surface_tightness;
use projtile::loopnest::builders;

fn main() {
    let m = 1u64 << 10; // 1024 words of fast memory
    let nest = builders::matmul(1 << 10, 1 << 10, 1 << 10);
    println!("program      : {nest}");
    println!("cache size M : {m} words");
    println!();

    // --- The full (β1, β2, β3) value surface --------------------------------
    let mut engine = Engine::new();
    let surface = engine
        .exponent_surface(&nest, m, &[0, 1, 2], &[1, 1, 1], &[m, m, m])
        .expect("surface solves");
    println!(
        "critical regions over β ∈ [0,1]³ : {}",
        surface.num_regions()
    );
    println!(
        "distinct affine pieces           : {}",
        surface.pieces().len()
    );
    println!();
    println!("closed-form pieces (the exponent is their pointwise minimum):");
    for piece in surface.render_pieces() {
        println!("  f(β) = {piece}");
    }
    println!();

    // --- Slices: the §6.1 regime split --------------------------------------
    // Restricting to β3 (with β1 = β2 = 1) recovers the 1-D value function
    // with its breakpoint at β3 = 1/2 — the paper's "small inner dimension"
    // crossover at L3 = √M.
    let slice = surface.slice_at_nominal(2);
    println!("slice along β3 (β1 = β2 = 1):");
    for window in slice.breakpoints.windows(2) {
        let (t0, v0) = &window[0];
        let (t1, v1) = &window[1];
        println!("  β3 ∈ [{t0}, {t1}] : exponent {v0} → {v1}");
    }
    println!();

    // --- Theorem 3, per region ----------------------------------------------
    let report = surface_tightness(&nest, m, &surface).expect("bound LP solves");
    println!("per-region Theorem-3 check (tiling LP value == bound LP value):");
    for region in &report.regions {
        println!(
            "  witness β = ({}, {}, {}) : exponent {} {}",
            region.witness[0],
            region.witness[1],
            region.witness[2],
            region.tiling_exponent,
            if region.tight {
                "TIGHT"
            } else {
                "NOT TIGHT (bug!)"
            }
        );
    }
    println!(
        "all {} regions tight: {}",
        report.regions.len(),
        report.all_tight
    );
    println!();

    // --- The session memo ---------------------------------------------------
    // Asking for the same surface again costs nothing: the engine answers
    // from its (axes, box)-keyed memo.
    let again = engine
        .exponent_surface(&nest, m, &[0, 1, 2], &[1, 1, 1], &[m, m, m])
        .expect("memoized surface");
    assert_eq!(again.num_regions(), surface.num_regions());
    let stats = engine.stats();
    println!(
        "engine session: {} surface queries, {} answered from cache",
        stats.queries, stats.hits
    );
}
