//! Running the analyses as a long-lived, concurrent service.
//!
//! Run with `cargo run --example analysis_service`.
//!
//! A compiler *service* (the "millions of users" deployment of the ROADMAP)
//! differs from a single compiler pass in three ways, and this example
//! demonstrates the machinery for each:
//!
//! 1. **Concurrency** — many clients query at once. The [`SharedEngine`]
//!    shards session state by canonical nest signature behind per-shard
//!    reader-writer locks; cache hits are served under the shared read lock,
//!    so the hot path never queues behind a writer.
//! 2. **Bounded memory** — a service cannot let its memo maps grow forever.
//!    Every cache is a cost-aware bounded LRU ([`EngineConfig`] sets the
//!    budgets); eviction never changes an answer, only who pays for it.
//! 3. **Restarts** — a service wants yesterday's warm caches back.
//!    [`SharedEngine::snapshot_json`] persists the result caches through the
//!    serde layer and `restore_json` warm-starts a new front from them.

use projtile::core::engine::{AnalysisResult, Query, SharedEngine};
use projtile::loopnest::builders;
use projtile::par::fan_out;

fn main() {
    let cache_words = 1u64 << 10;

    // The service front: sharded, thread-safe, bounded. Shareable by
    // reference across client threads.
    let service = SharedEngine::new();

    // A mixed client population: four "clients" each issue a batch about
    // their own kernel, then probe everyone else's kernels too — so later
    // requests are read-path cache hits no matter which thread asks.
    let kernels = [
        ("matmul", builders::matmul(1 << 9, 1 << 9, 1 << 5)),
        ("nbody", builders::nbody(1 << 6, 1 << 9)),
        (
            "conv1x1",
            builders::pointwise_conv(2, 1, 1 << 6, 1 << 5, 1 << 5),
        ),
        ("random", builders::random_projective(7, 4, 4, (1, 256))),
    ];
    let results = fan_out(kernels.len(), |client| {
        let mut lines = Vec::new();
        for step in 0..kernels.len() {
            let (name, nest) = &kernels[(client + step) % kernels.len()];
            let answers = service.analyze_batch(
                nest,
                &[
                    Query::OptimalTiling {
                        cache_size: cache_words,
                    },
                    Query::Tightness {
                        cache_size: cache_words,
                    },
                ],
            );
            let (Ok(AnalysisResult::OptimalTiling(tiling)), Ok(AnalysisResult::Tightness(t))) =
                (answers[0].clone(), answers[1].clone())
            else {
                unreachable!("valid queries answer with their own variants")
            };
            if step == 0 {
                lines.push(format!(
                    "client {client}: {name:8} tile {:?}  exponent {}  tight: {}",
                    tiling.tile_dims, t.tiling_exponent, t.tight
                ));
            }
        }
        lines
    });
    println!("== concurrent clients ==");
    for line in results.into_iter().flatten() {
        println!("  {line}");
    }
    let stats = service.stats();
    println!(
        "  {} queries, {} hits, {} misses, {} nests over {} shards",
        stats.queries,
        stats.hits,
        stats.misses,
        stats.interned,
        service.num_shards()
    );

    // Bounded memoization: the budgets are visible (and respected) at runtime.
    let metrics = service.cache_metrics();
    println!("\n== cache occupancy ==");
    println!(
        "  results: {} entries, ~{} bytes of {} budgeted ({} evictions)",
        metrics.results.entries,
        metrics.results.cost,
        metrics.results.capacity,
        metrics.results.evictions
    );

    // Persistence: snapshot to disk, restart, restore — the restored front
    // answers the whole corpus from cache (zero misses).
    let path = std::env::temp_dir().join("projtile_service_snapshot.json");
    std::fs::write(&path, service.snapshot_json()).expect("snapshot writes");
    let bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
    let text = std::fs::read_to_string(&path).expect("snapshot reads back");
    let restarted = SharedEngine::restore_json(&text).expect("snapshot restores");
    for (_, nest) in &kernels {
        let again = restarted.analyze(
            nest,
            &Query::Tightness {
                cache_size: cache_words,
            },
        );
        assert!(again.is_ok(), "restored front answers from cache");
    }
    let stats = restarted.stats();
    println!("\n== snapshot/restore ==");
    println!("  snapshot: {bytes} bytes at {}", path.display());
    println!(
        "  restored front: {} queries, {} hits, {} misses (warm restart)",
        stats.queries, stats.hits, stats.misses
    );
    assert_eq!(stats.misses, 0, "restored front must be warm");
    let _ = std::fs::remove_file(&path);
}
