//! Running the analyses as a long-lived, hardened network service.
//!
//! Run with `cargo run --example analysis_service`.
//!
//! Earlier revisions of this example drove a [`SharedEngine`] in-process;
//! since the service crate exists, the example exercises the real thing: it
//! boots the hardened TCP server (`projtile::service`) on an ephemeral
//! loopback port, fans out concurrent *network* clients against it, reads
//! the `/metrics` document, drains gracefully (which publishes a final
//! crash-safe snapshot generation), and restarts from the snapshot store to
//! show the warm-cache restore — the full lifecycle an operator sees,
//! compressed into one process. See `docs/operations.md` for the runbook
//! version of everything demonstrated here.

use projtile::core::engine::{AnalysisResult, Query};
use projtile::loopnest::builders;
use projtile::par::fan_out;
use projtile::service::{Client, FaultPlan, Server, ServerConfig};
use std::time::Duration;

fn main() {
    let cache_words = 1u64 << 10;
    let snapshot_dir = std::env::temp_dir().join(format!(
        "projtile-analysis-service-example-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&snapshot_dir);
    let config = ServerConfig {
        snapshot_dir: Some(snapshot_dir.clone()),
        snapshot_interval: Some(Duration::from_millis(100)),
        ..ServerConfig::default()
    };

    // First life: boot, serve a mixed client population, drain.
    let handle = Server::start(config.clone(), FaultPlan::default()).expect("server starts");
    let addr = handle.addr().to_string();
    println!("== serving on {addr} ==");

    // Four network clients; each asks about its own kernel first, then
    // probes everyone else's — so later requests are cache hits regardless
    // of which worker thread serves them.
    let kernels = [
        ("matmul", builders::matmul(1 << 9, 1 << 9, 1 << 5)),
        ("nbody", builders::nbody(1 << 6, 1 << 9)),
        (
            "conv1x1",
            builders::pointwise_conv(2, 1, 1 << 6, 1 << 5, 1 << 5),
        ),
        ("random", builders::random_projective(7, 4, 4, (1, 256))),
    ];
    let queries = [
        Query::OptimalTiling {
            cache_size: cache_words,
        },
        Query::Tightness {
            cache_size: cache_words,
        },
    ];
    let lines = fan_out(kernels.len(), |client| {
        // Each thread is an independent client with its own retry stream
        // (distinct jitter seeds decorrelate simultaneous backoffs).
        let http = Client::new(addr.clone());
        let mut line = String::new();
        for step in 0..kernels.len() {
            let (name, nest) = &kernels[(client + step) % kernels.len()];
            let answers = http.analyze(nest, &queries).expect("served");
            let (Ok(AnalysisResult::OptimalTiling(tiling)), Ok(AnalysisResult::Tightness(t))) =
                (answers[0].clone(), answers[1].clone())
            else {
                unreachable!("valid queries answer with their own variants")
            };
            if step == 0 {
                line = format!(
                    "client {client}: {name:8} tile {:?}  exponent {}  tight: {}",
                    tiling.tile_dims, t.tiling_exponent, t.tight
                );
            }
        }
        line
    });
    for line in lines {
        println!("  {line}");
    }

    // Observability: the same numbers an operator scrapes from /metrics.
    let metrics = Client::new(addr.clone()).metrics().expect("metrics");
    let field = |name: &str| match metrics.field(name) {
        Ok(projtile::service::Value::Int(n)) => *n,
        _ => 0,
    };
    println!("\n== /metrics ==");
    println!(
        "  accepted {}  completed {}  shed {}  panics {}",
        field("accepted"),
        field("completed"),
        field("shed_queue_full"),
        field("panics"),
    );

    // Graceful drain: in-flight work finishes, a final snapshot generation
    // is published, the port closes.
    Client::new(addr).drain().expect("drain acknowledged");
    handle.wait();
    println!("\n== drained; snapshot store ==");
    let mut generations: Vec<_> = std::fs::read_dir(&snapshot_dir)
        .expect("store exists")
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .collect();
    generations.sort();
    for name in &generations {
        println!("  {name}");
    }

    // Second life: restart from the same store. The restored caches serve
    // the whole corpus as hits — a warm restart over the wire.
    let handle = Server::start(config, FaultPlan::default()).expect("server restarts");
    let http = Client::new(handle.addr().to_string());
    for (_, nest) in &kernels {
        let again = http
            .analyze(
                nest,
                &[Query::Tightness {
                    cache_size: cache_words,
                }],
            )
            .expect("restored server answers");
        assert!(again[0].is_ok(), "restored answers are whole");
    }
    let stats = handle.engine().stats();
    println!("\n== warm restart ==");
    println!(
        "  restored server: {} queries, {} hits, {} misses",
        stats.queries, stats.hits, stats.misses
    );
    assert_eq!(stats.misses, 0, "restored front must be warm");
    handle.join();
    let _ = std::fs::remove_dir_all(&snapshot_dir);
}
