//! n-body pairwise interactions (§6.3), measured on the cache simulator.
//!
//! Run with `cargo run --example nbody_interactions`.
//!
//! All pairs of two particle lists interact. The example sweeps the size of
//! the first list from "fits in cache" to "much larger than cache", printing
//! the §6.3 closed-form tile size and lower bound, the LP-derived tile, and
//! the traffic actually measured for the untiled and optimal schedules on a
//! simulated LRU cache. Analysis runs through one [`Engine`] session; the
//! measured comparison reuses each nest's lower bound from the session
//! instead of recomputing it.

use projtile::core::closed_forms;
use projtile::core::engine::{AnalysisResult, Engine, Query};
use projtile::exec::{compare_schedules_with_bound, CachePolicy};
use projtile::loopnest::builders;

fn main() {
    let m = 1u64 << 8; // 256-word fast memory
    let l2 = 1u64 << 11; // 2048 particles in the second list

    println!("n-body pairwise interactions: Acc[x1] = f(Src[x1], Other[x2])");
    println!("cache M = {m} words, |Other| = {l2}");
    println!();
    println!(
        "{:>8} | {:>12} | {:>12} | {:>14} | {:>12} | {:>12}",
        "L1", "tile (6.3)", "LB (words)", "optimal tile", "measured opt", "measured naive"
    );
    println!("{}", "-".repeat(90));

    let mut engine = Engine::new();
    let queries = vec![
        Query::LowerBound { cache_size: m },
        Query::OptimalTiling { cache_size: m },
    ];

    for log_l1 in [2u32, 4, 6, 8, 10] {
        let l1 = 1u64 << log_l1;
        let nest = builders::nbody(l1, l2);

        // §6.3 closed forms.
        let tile_size = closed_forms::nbody_tile_size(l1, l2, m);
        let closed_lb = closed_forms::nbody_lower_bound_words(l1, l2, m);

        // General machinery agrees (checked, not assumed).
        let mut answers = engine.analyze_batch(&nest, &queries).into_iter();
        let Some(Ok(AnalysisResult::LowerBound(general))) = answers.next() else {
            unreachable!("lower-bound query answers with a lower bound")
        };
        let Some(Ok(AnalysisResult::OptimalTiling(tiling))) = answers.next() else {
            unreachable!("tiling query answers with a tiling")
        };
        assert!((general.words - closed_lb).abs() / closed_lb < 1e-9);

        // Measured traffic on the LRU simulator, against the session's bound.
        let cmp = compare_schedules_with_bound(&nest, m, CachePolicy::Lru, general.words);

        println!(
            "{:>8} | {:>12} | {:>12.0} | {:>14} | {:>12} | {:>12}",
            l1,
            tile_size,
            closed_lb,
            format!("{:?}", tiling.tile_dims),
            cmp.optimal().words,
            cmp.untiled().words
        );
    }

    println!();
    println!(
        "When L1 <= M the optimal schedule keeps the whole first list resident and\n\
         streams the second list once; the untiled order re-streams it for every\n\
         particle once L1 grows past the cache."
    );
}
