//! Quickstart: analyze a matrix multiplication whose inner dimension is small.
//!
//! Run with `cargo run --example quickstart`.
//!
//! This walks the full pipeline of the paper on the §6.1 example:
//! build the loop nest, compute the classical and arbitrary-bound lower
//! bounds, derive the optimal rectangular tile, check tightness (Theorem 3),
//! and finally measure the tiling on a simulated LRU cache.

use projtile::core::{check_tightness, communication_lower_bound, hbl, optimal_tiling};
use projtile::exec::{compare_schedules, CachePolicy};
use projtile::loopnest::builders;

fn main() {
    // A "tall-skinny" matrix multiplication: C (512x8) += A (512x512) * B (512x8).
    // The inner bound L3 = 8 is far below sqrt(M), the regime the paper targets.
    let (l1, l2, l3) = (512u64, 512u64, 8u64);
    let cache_words = 1u64 << 10; // M = 1024 words of fast memory

    let nest = builders::matmul(l1, l2, l3);
    println!("program      : {nest}");
    println!("cache size M : {cache_words} words");
    println!();

    // --- Lower bounds -------------------------------------------------------
    let classical = hbl::large_bound_lower_bound(&nest, cache_words);
    let bound = communication_lower_bound(&nest, cache_words);
    println!("classical lower bound (sec. 3)  : {classical:.0} words");
    println!(
        "arbitrary-bound lower bound (thm 2): {:.0} words  (exponent k = {})",
        bound.words, bound.exponent
    );
    println!(
        "  -> the paper's bound is {:.1}x stronger here",
        bound.words / classical
    );
    println!();

    // --- Optimal tiling -----------------------------------------------------
    let tiling = optimal_tiling(&nest, cache_words);
    println!("optimal tile (lp 5.1)           : {:?}", tiling.tile_dims());
    let model = tiling.communication_model();
    println!(
        "  tiles = {}, words moved (analytic) = {}, ratio to lower bound = {:.2}",
        model.num_tiles, model.total_words, model.ratio_to_lower_bound
    );

    // --- Theorem 3: tightness ----------------------------------------------
    let report = check_tightness(&nest, cache_words);
    println!(
        "tightness (thm 3)               : tiling exponent {} == bound exponent {} -> {}",
        report.tiling_exponent,
        report.bound_exponent,
        if report.tight {
            "TIGHT"
        } else {
            "NOT TIGHT (bug!)"
        }
    );
    println!();

    // --- Measured on the cache simulator ------------------------------------
    println!("simulated LRU cache ({cache_words} words):");
    let cmp = compare_schedules(&nest, cache_words, CachePolicy::Lru);
    println!(
        "  lower bound          : {:>12.0} words",
        cmp.lower_bound_words
    );
    for r in &cmp.results {
        println!(
            "  {:<22}: {:>12} words   ({:.2}x lower bound)",
            r.label, r.words, r.ratio_to_lower_bound
        );
    }
}
