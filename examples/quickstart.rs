//! Quickstart: analyze a matrix multiplication whose inner dimension is small.
//!
//! Run with `cargo run --example quickstart`.
//!
//! This walks the full pipeline of the paper on the §6.1 example through the
//! session API: open an [`Engine`], batch the typed queries (lower bound,
//! optimal tile, Theorem-3 tightness) against the nest, and finally measure
//! the tiling on a simulated LRU cache. The engine memoizes everything it
//! computes — the batch shares one set of artifacts, and any repeated query
//! is a pure cache lookup.

use projtile::core::engine::{AnalysisResult, Engine, Query};
use projtile::core::hbl;
use projtile::exec::{compare_schedules_with_bound, CachePolicy};
use projtile::loopnest::builders;

fn main() {
    // A "tall-skinny" matrix multiplication: C (512x8) += A (512x512) * B (512x8).
    // The inner bound L3 = 8 is far below sqrt(M), the regime the paper targets.
    let (l1, l2, l3) = (512u64, 512u64, 8u64);
    let cache_words = 1u64 << 10; // M = 1024 words of fast memory

    let nest = builders::matmul(l1, l2, l3);
    println!("program      : {nest}");
    println!("cache size M : {cache_words} words");
    println!();

    // --- One session, one batch of typed queries ---------------------------
    let mut engine = Engine::new();
    let queries = vec![
        Query::LowerBound {
            cache_size: cache_words,
        },
        Query::OptimalTiling {
            cache_size: cache_words,
        },
        Query::Tightness {
            cache_size: cache_words,
        },
    ];
    let mut answers = engine.analyze_batch(&nest, &queries).into_iter();
    let Some(Ok(AnalysisResult::LowerBound(bound))) = answers.next() else {
        unreachable!("lower-bound query answers with a lower bound")
    };
    let Some(Ok(AnalysisResult::OptimalTiling(tiling))) = answers.next() else {
        unreachable!("tiling query answers with a tiling")
    };
    let Some(Ok(AnalysisResult::Tightness(report))) = answers.next() else {
        unreachable!("tightness query answers with a report")
    };

    // --- Lower bounds -------------------------------------------------------
    let classical = hbl::large_bound_lower_bound(&nest, cache_words);
    println!("classical lower bound (sec. 3)  : {classical:.0} words");
    println!(
        "arbitrary-bound lower bound (thm 2): {:.0} words  (exponent k = {})",
        bound.words, bound.exponent
    );
    println!(
        "  -> the paper's bound is {:.1}x stronger here",
        bound.words / classical
    );
    println!();

    // --- Optimal tiling -----------------------------------------------------
    println!("optimal tile (lp 5.1)           : {:?}", tiling.tile_dims);
    println!(
        "  tile volume M^{} = {} iterations",
        tiling.value,
        tiling.tile_dims.iter().product::<u64>()
    );

    // --- Theorem 3: tightness ----------------------------------------------
    println!(
        "tightness (thm 3)               : tiling exponent {} == bound exponent {} -> {}",
        report.tiling_exponent,
        report.bound_exponent,
        if report.tight {
            "TIGHT"
        } else {
            "NOT TIGHT (bug!)"
        }
    );
    println!();

    // The batch warmed the whole cache entry: a repeat of any query is now a
    // pure lookup.
    let stats = engine.stats();
    println!(
        "engine session: {} queries, {} cache hits, {} interned nest(s)",
        stats.queries, stats.hits, stats.interned
    );
    println!();

    // --- Measured on the cache simulator ------------------------------------
    // The engine already holds the lower bound; the simulator reuses it.
    println!("simulated LRU cache ({cache_words} words):");
    let cmp = compare_schedules_with_bound(&nest, cache_words, CachePolicy::Lru, bound.words);
    println!(
        "  lower bound          : {:>12.0} words",
        cmp.lower_bound_words
    );
    for r in &cmp.results {
        println!(
            "  {:<22}: {:>12} words   ({:.2}x lower bound)",
            r.label, r.words, r.ratio_to_lower_bound
        );
    }
}
