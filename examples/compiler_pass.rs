//! Using the library the way a compiler pass would (§7, "Discussion").
//!
//! Run with `cargo run --example compiler_pass`.
//!
//! The paper's intended application is automatic blocking of projective loop
//! nests inside a compiler: given any nest the front-end hands us — including
//! shapes nobody has hand-optimized — emit tile sizes that are provably
//! communication-optimal for the target cache, plus the piecewise-linear
//! description of how the optimum moves as a problem dimension changes
//! (useful for JIT-style specialization decisions).

use projtile::arith::Rational;
use projtile::core::{check_tightness, optimal_tiling, parametric};
use projtile::loopnest::LoopNest;

/// What the "compiler" emits for one loop nest.
struct BlockingDecision {
    tile: Vec<u64>,
    exponent: Rational,
    tight: bool,
}

/// The pass: analyze a nest for a given cache and emit a blocking decision.
fn block_loop_nest(nest: &LoopNest, cache_words: u64) -> BlockingDecision {
    let tiling = optimal_tiling(nest, cache_words);
    let report = check_tightness(nest, cache_words);
    BlockingDecision {
        tile: tiling.tile_dims().to_vec(),
        exponent: report.tiling_exponent.clone(),
        tight: report.tight,
    }
}

fn main() {
    let cache_words = 1u64 << 10;

    // A grab-bag of projective nests a compiler might encounter, written with
    // the builder API an IR lowering would use. The last one is a 4-operand
    // "unconventional" kernel with no hand-tuned library equivalent — the
    // capsule-network situation the introduction describes.
    let programs: Vec<(&str, LoopNest)> = vec![
        (
            "batched GEMM, tiny batch",
            LoopNest::builder()
                .index("b", 4)
                .index("i", 256)
                .index("j", 256)
                .index("k", 256)
                .array("C", ["b", "i", "k"])
                .array("A", ["b", "i", "j"])
                .array("B", ["b", "j", "k"])
                .build()
                .unwrap(),
        ),
        (
            "attention score block, short sequence",
            LoopNest::builder()
                .index("h", 8)
                .index("q", 16)
                .index("kv", 512)
                .index("d", 64)
                .array("S", ["h", "q", "kv"])
                .array("Q", ["h", "q", "d"])
                .array("K", ["h", "kv", "d"])
                .build()
                .unwrap(),
        ),
        (
            "4-operand contraction (no BLAS equivalent)",
            LoopNest::builder()
                .index("a", 32)
                .index("b", 4)
                .index("c", 128)
                .index("d", 8)
                .array("Out", ["a", "c"])
                .array("T1", ["a", "b", "d"])
                .array("T2", ["b", "c"])
                .array("T3", ["c", "d"])
                .build()
                .unwrap(),
        ),
    ];

    println!("automatic blocking decisions for a {cache_words}-word cache");
    println!();
    for (name, nest) in &programs {
        let decision = block_loop_nest(nest, cache_words);
        println!("{name}");
        println!("  nest        : {nest}");
        println!("  tile sizes  : {:?}", decision.tile);
        println!(
            "  tile volume : M^{}   (provably optimal: {})",
            decision.exponent, decision.tight
        );

        // How does the optimum move if the first loop's bound changes? A JIT
        // can use the breakpoints to decide when re-blocking is worthwhile.
        let vf = parametric::exponent_vs_beta(nest, cache_words, 0, 1, 1 << 12)
            .expect("parametric analysis");
        let breakpoints: Vec<String> = vf
            .breakpoints
            .iter()
            .map(|(beta, value)| format!("beta={beta} -> M^{value}"))
            .collect();
        println!(
            "  exponent vs {} bound: {} piece(s): {}",
            nest.indices()[0].name,
            vf.num_pieces(),
            breakpoints.join(", ")
        );
        println!();
    }
}
