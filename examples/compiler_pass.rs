//! Using the library the way a compiler pass would (§7, "Discussion").
//!
//! Run with `cargo run --example compiler_pass`.
//!
//! The paper's intended application is automatic blocking of projective loop
//! nests inside a compiler: given any nest the front-end hands us — including
//! shapes nobody has hand-optimized — emit tile sizes that are provably
//! communication-optimal for the target cache. A compiler pass is exactly the
//! repeated-query workload the [`Engine`] session exists for: one long-lived
//! engine serves every nest of the compilation unit, repeated shapes hit the
//! cache (even when a later IR pass re-declares a nest with loops or arrays
//! permuted — interning is by canonical signature), and a JIT probing many
//! candidate specializations of one dimension reads each answer off a
//! memoized slice of the §7 value function instead of re-solving LPs.

use projtile::arith::Rational;
use projtile::core::engine::{AnalysisResult, Engine, Query};
use projtile::loopnest::LoopNest;

/// What the "compiler" emits for one loop nest.
struct BlockingDecision {
    tile: Vec<u64>,
    exponent: Rational,
    tight: bool,
}

/// The pass: analyze a nest for a given cache through the session engine.
fn block_loop_nest(engine: &mut Engine, nest: &LoopNest, cache_words: u64) -> BlockingDecision {
    let queries = vec![
        Query::OptimalTiling {
            cache_size: cache_words,
        },
        Query::Tightness {
            cache_size: cache_words,
        },
    ];
    let mut answers = engine.analyze_batch(nest, &queries).into_iter();
    let Some(Ok(AnalysisResult::OptimalTiling(tiling))) = answers.next() else {
        unreachable!("tiling query answers with a tiling")
    };
    let Some(Ok(AnalysisResult::Tightness(report))) = answers.next() else {
        unreachable!("tightness query answers with a report")
    };
    BlockingDecision {
        tile: tiling.tile_dims,
        exponent: report.tiling_exponent,
        tight: report.tight,
    }
}

fn main() {
    let cache_words = 1u64 << 10;

    // A grab-bag of projective nests a compiler might encounter, written with
    // the builder API an IR lowering would use. The last one is a 4-operand
    // "unconventional" kernel with no hand-tuned library equivalent — the
    // capsule-network situation the introduction describes.
    let programs: Vec<(&str, LoopNest)> = vec![
        (
            "batched GEMM, tiny batch",
            LoopNest::builder()
                .index("b", 4)
                .index("i", 256)
                .index("j", 256)
                .index("k", 256)
                .array("C", ["b", "i", "k"])
                .array("A", ["b", "i", "j"])
                .array("B", ["b", "j", "k"])
                .build()
                .unwrap(),
        ),
        (
            "attention score block, short sequence",
            LoopNest::builder()
                .index("h", 8)
                .index("q", 16)
                .index("kv", 512)
                .index("d", 64)
                .array("S", ["h", "q", "kv"])
                .array("Q", ["h", "q", "d"])
                .array("K", ["h", "kv", "d"])
                .build()
                .unwrap(),
        ),
        (
            "4-operand contraction (no BLAS equivalent)",
            LoopNest::builder()
                .index("a", 32)
                .index("b", 4)
                .index("c", 128)
                .index("d", 8)
                .array("Out", ["a", "c"])
                .array("T1", ["a", "b", "d"])
                .array("T2", ["b", "c"])
                .array("T3", ["c", "d"])
                .build()
                .unwrap(),
        ),
    ];

    // One engine for the whole compilation unit.
    let mut engine = Engine::new();

    println!("automatic blocking decisions for a {cache_words}-word cache");
    println!();
    for (name, nest) in &programs {
        let decision = block_loop_nest(&mut engine, nest, cache_words);
        println!("{name}");
        println!("  nest        : {nest}");
        println!("  tile sizes  : {:?}", decision.tile);
        println!(
            "  tile volume : M^{}   (provably optimal: {})",
            decision.exponent, decision.tight
        );

        // How does the optimum move if the first loop's bound changes? A JIT
        // can use the breakpoints to decide when re-blocking is worthwhile.
        let slice = Query::Slice {
            cache_size: cache_words,
            axis: 0,
            lo_bound: 1,
            hi_bound: 1 << 12,
        };
        let Ok(AnalysisResult::Slice(vf)) = engine.analyze(nest, &slice) else {
            unreachable!("slice query answers with a value function")
        };
        let breakpoints: Vec<String> = vf
            .breakpoints
            .iter()
            .map(|(beta, value)| format!("beta={beta} -> M^{value}"))
            .collect();
        println!(
            "  exponent vs {} bound: {} piece(s): {}",
            nest.indices()[0].name,
            vf.num_pieces(),
            breakpoints.join(", ")
        );
        println!();
    }

    // A JIT specializer probing candidate batch sizes for the first program:
    // the first probe sweeps the memoized slice once, every further probe is
    // a table lookup.
    let (name, gemm) = &programs[0];
    println!("JIT specialization probe ({name}, batch axis):");
    for batch in [1u64, 2, 4, 8, 16, 64, 256, 1024] {
        let k = engine
            .exponent_at_bound(gemm, cache_words, 0, batch)
            .expect("valid probe");
        println!("  batch {batch:>5} -> optimal tile volume M^{k}");
    }
    println!();

    // Re-declaring a nest with permuted loops and arrays (as a later IR pass
    // might) hits the same interned entry.
    let shuffled = LoopNest::builder()
        .index("k", 256)
        .index("b", 4)
        .index("j", 256)
        .index("i", 256)
        .array("B", ["b", "j", "k"])
        .array("C", ["b", "i", "k"])
        .array("A", ["b", "i", "j"])
        .build()
        .unwrap();
    let _ = engine.analyze(
        &shuffled,
        &Query::OptimalTiling {
            cache_size: cache_words,
        },
    );
    let stats = engine.stats();
    println!(
        "session totals: {} nests analyzed, {} distinct signatures interned, \
         {} queries ({} cache hits)",
        programs.len() + 1,
        stats.interned,
        stats.queries,
        stats.hits
    );
    assert_eq!(
        stats.interned as usize,
        programs.len(),
        "the shuffled re-declaration shares its original entry"
    );
}
