//! Matrix-vector multiplication across the small-bound crossover (§6.1).
//!
//! Run with `cargo run --example matvec_tiling`.
//!
//! Sweeps the inner dimension `L3` of a matrix multiplication from 1
//! (matrix-vector) up past `√M`, printing for each point the classical lower
//! bound, the arbitrary-bound lower bound, the optimal tile shape, and the
//! α-family of alternative optimal tiles where one exists.

use projtile::arith::ratio;
use projtile::core::{alpha, communication_lower_bound, hbl, optimal_tiling};
use projtile::loopnest::builders;

fn main() {
    let l1 = 1u64 << 9;
    let l2 = 1u64 << 9;
    let m = 1u64 << 10; // sqrt(M) = 32

    println!("matrix multiply {l1} x {l2} x L3, cache M = {m} words (sqrt(M) = 32)");
    println!(
        "{:>6} | {:>14} | {:>14} | {:>18} | alternative tile (alpha = 0)",
        "L3", "classical LB", "arbitrary LB", "optimal tile"
    );
    println!("{}", "-".repeat(95));

    for log_l3 in 0..=7u32 {
        let l3 = 1u64 << log_l3;
        let nest = builders::matmul(l1, l2, l3);
        let classical = hbl::large_bound_lower_bound(&nest, m);
        let bound = communication_lower_bound(&nest, m);
        let tiling = optimal_tiling(&nest, m);

        // The α-family along the first axis: another optimal tile shape, if
        // the optimum is degenerate (it is whenever L3 < sqrt(M)).
        let family = alpha::optimal_family(&nest, m, 0);
        let alt = if family.is_degenerate() {
            "unique".to_string()
        } else {
            let other = family.tiling_at(&nest, m, &ratio(0, 1));
            format!("{:?}", other.tile_dims())
        };

        println!(
            "{:>6} | {:>14.0} | {:>14.0} | {:>18} | {}",
            l3,
            classical,
            bound.words,
            format!("{:?}", tiling.tile_dims()),
            alt
        );
    }

    println!();
    println!(
        "Below L3 = 32 the classical bound (ops / sqrt(M)) keeps shrinking with L3,\n\
         but the true requirement is reading the {l1}x{l2} matrix: the arbitrary-bound\n\
         lower bound stays at {} words and the optimal tile flattens to match L3.",
        l1 * l2
    );
}
