//! Matrix-vector multiplication across the small-bound crossover (§6.1).
//!
//! Run with `cargo run --example matvec_tiling`.
//!
//! Sweeps the inner dimension `L3` of a matrix multiplication from 1
//! (matrix-vector) up past `√M`, printing for each point the classical lower
//! bound, the arbitrary-bound lower bound, the optimal tile shape, and the
//! α-family of alternative optimal tiles where one exists. The sweep runs
//! through one [`Engine`] session: each `L3` is a distinct nest (its own
//! interned signature), and per nest the `LowerBound` + `OptimalTiling`
//! queries are answered as one batch over shared artifacts.

use projtile::arith::ratio;
use projtile::core::engine::{AnalysisResult, Engine, Query};
use projtile::core::{alpha, hbl};
use projtile::loopnest::builders;

fn main() {
    let l1 = 1u64 << 9;
    let l2 = 1u64 << 9;
    let m = 1u64 << 10; // sqrt(M) = 32

    println!("matrix multiply {l1} x {l2} x L3, cache M = {m} words (sqrt(M) = 32)");
    println!(
        "{:>6} | {:>14} | {:>14} | {:>18} | alternative tile (alpha = 0)",
        "L3", "classical LB", "arbitrary LB", "optimal tile"
    );
    println!("{}", "-".repeat(95));

    let mut engine = Engine::new();
    let queries = vec![
        Query::LowerBound { cache_size: m },
        Query::OptimalTiling { cache_size: m },
    ];

    for log_l3 in 0..=7u32 {
        let l3 = 1u64 << log_l3;
        let nest = builders::matmul(l1, l2, l3);
        let classical = hbl::large_bound_lower_bound(&nest, m);

        let mut answers = engine.analyze_batch(&nest, &queries).into_iter();
        let Some(Ok(AnalysisResult::LowerBound(bound))) = answers.next() else {
            unreachable!("lower-bound query answers with a lower bound")
        };
        let Some(Ok(AnalysisResult::OptimalTiling(tiling))) = answers.next() else {
            unreachable!("tiling query answers with a tiling")
        };

        // The α-family along the first axis: another optimal tile shape, if
        // the optimum is degenerate (it is whenever L3 < sqrt(M)).
        let family = alpha::optimal_family(&nest, m, 0);
        let alt = if family.is_degenerate() {
            "unique".to_string()
        } else {
            let other = family.tiling_at(&nest, m, &ratio(0, 1));
            format!("{:?}", other.tile_dims())
        };

        println!(
            "{:>6} | {:>14.0} | {:>14.0} | {:>18} | {}",
            l3,
            classical,
            bound.words,
            format!("{:?}", tiling.tile_dims),
            alt
        );
    }

    let stats = engine.stats();
    println!();
    println!(
        "engine session: {} signatures interned, {} queries answered",
        stats.interned, stats.queries
    );
    println!(
        "Below L3 = 32 the classical bound (ops / sqrt(M)) keeps shrinking with L3,\n\
         but the true requirement is reading the {l1}x{l2} matrix: the arbitrary-bound\n\
         lower bound stays at {} words and the optimal tile flattens to match L3.",
        l1 * l2
    );
}
