//! Pointwise (1×1) convolution tiling for machine-learning shapes (§6.2).
//!
//! Run with `cargo run --example pointwise_conv`.
//!
//! Convolutional networks routinely use pointwise convolutions whose channel
//! counts are tiny compared to `√M` — exactly the small-bound regime the paper
//! targets. This example analyses a few MobileNet-style layer shapes through
//! one [`Engine`] session (a batch of typed queries per layer, like an
//! inference compiler would issue them): it prints the lower bound, the
//! optimal tile over (batch, channels-in, channels-out, width, height), and
//! verifies the §6.2 closed form against the engine's answers.

use projtile::core::contraction;
use projtile::core::engine::{AnalysisResult, Engine, Query};
use projtile::loopnest::builders;

fn main() {
    let m = 1u64 << 12; // 4096-word fast memory
    println!("pointwise convolution Out(k,h,w,b) += Image(w,h,c,b) * Filter(k,c)");
    println!("cache M = {m} words");
    println!();
    println!(
        "{:>26} | {:>14} | {:>10} | {:>26} | {:>6}",
        "(B, C, K, W, H)", "lower bound", "exponent", "optimal tile (b,c,k,w,h)", "tight"
    );
    println!("{}", "-".repeat(100));

    // (batch, c_in, k_out, width, height) — MobileNet-ish shapes with small
    // channel counts and one "fat" classifier-style layer.
    let shapes: &[(u64, u64, u64, u64, u64)] = &[
        (1, 3, 32, 112, 112),
        (1, 32, 64, 56, 56),
        (4, 16, 16, 28, 28),
        (8, 256, 256, 7, 7),
        (1, 1024, 1024, 1, 1),
    ];

    let mut engine = Engine::new();
    let queries = vec![
        Query::LowerBound { cache_size: m },
        Query::OptimalTiling { cache_size: m },
        Query::Tightness { cache_size: m },
    ];

    for &(b, c, k, w, h) in shapes {
        let nest = builders::pointwise_conv(b, c, k, w, h);
        let mut answers = engine.analyze_batch(&nest, &queries).into_iter();
        let Some(Ok(AnalysisResult::LowerBound(bound))) = answers.next() else {
            unreachable!("lower-bound query answers with a lower bound")
        };
        let Some(Ok(AnalysisResult::OptimalTiling(tiling))) = answers.next() else {
            unreachable!("tiling query answers with a tiling")
        };
        let Some(Ok(AnalysisResult::Tightness(report))) = answers.next() else {
            unreachable!("tightness query answers with a report")
        };

        // §6.2 closed form must agree with the engine's tiling-LP value.
        let closed = contraction::pointwise_conv_exponent(b, c, k, w, h, m);
        assert_eq!(closed, tiling.value, "closed form disagrees with the LP");

        println!(
            "{:>26} | {:>14.0} | {:>10} | {:>26} | {:>6}",
            format!("({b}, {c}, {k}, {w}, {h})"),
            bound.words,
            bound.exponent.to_string(),
            format!("{:?}", tiling.tile_dims),
            report.tight
        );
    }

    println!();
    println!(
        "Small channel counts (C = 3, 16, 32) pull the exponent below 3/2: the optimal\n\
         tile keeps whole channel fibers resident and blocks the spatial dimensions,\n\
         rather than using the classical square blocking that assumes every bound is large."
    );
}
