//! Pointwise (1×1) convolution tiling for machine-learning shapes (§6.2).
//!
//! Run with `cargo run --example pointwise_conv`.
//!
//! Convolutional networks routinely use pointwise convolutions whose channel
//! counts are tiny compared to `√M` — exactly the small-bound regime the paper
//! targets. This example analyses a few MobileNet-style layer shapes: it
//! prints the lower bound, the optimal tile over (batch, channels-in,
//! channels-out, width, height), and verifies the §6.2 closed form against the
//! general LP machinery.

use projtile::core::{
    check_tightness, communication_lower_bound, contraction, optimal_tiling, solve_tiling_lp,
};
use projtile::loopnest::builders;

fn main() {
    let m = 1u64 << 12; // 4096-word fast memory
    println!("pointwise convolution Out(k,h,w,b) += Image(w,h,c,b) * Filter(k,c)");
    println!("cache M = {m} words");
    println!();
    println!(
        "{:>26} | {:>14} | {:>10} | {:>26} | {:>6}",
        "(B, C, K, W, H)", "lower bound", "exponent", "optimal tile (b,c,k,w,h)", "tight"
    );
    println!("{}", "-".repeat(100));

    // (batch, c_in, k_out, width, height) — MobileNet-ish shapes with small
    // channel counts and one "fat" classifier-style layer.
    let shapes: &[(u64, u64, u64, u64, u64)] = &[
        (1, 3, 32, 112, 112),
        (1, 32, 64, 56, 56),
        (4, 16, 16, 28, 28),
        (8, 256, 256, 7, 7),
        (1, 1024, 1024, 1, 1),
    ];

    for &(b, c, k, w, h) in shapes {
        let nest = builders::pointwise_conv(b, c, k, w, h);
        let bound = communication_lower_bound(&nest, m);
        let tiling = optimal_tiling(&nest, m);
        let report = check_tightness(&nest, m);

        // §6.2 closed form must agree with the LP.
        let closed = contraction::pointwise_conv_exponent(b, c, k, w, h, m);
        let lp_value = solve_tiling_lp(&nest, m).value;
        assert_eq!(closed, lp_value, "closed form disagrees with the LP");

        println!(
            "{:>26} | {:>14.0} | {:>10} | {:>26} | {:>6}",
            format!("({b}, {c}, {k}, {w}, {h})"),
            bound.words,
            bound.exponent.to_string(),
            format!("{:?}", tiling.tile_dims()),
            report.tight
        );
    }

    println!();
    println!(
        "Small channel counts (C = 3, 16, 32) pull the exponent below 3/2: the optimal\n\
         tile keeps whole channel fibers resident and blocks the spatial dimensions,\n\
         rather than using the classical square blocking that assumes every bound is large."
    );
}
